//===- support/ItemClasses.h - Item equivalence classes --------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Universe compression for item-wise independent bit-vector dataflow
/// problems. Every GIVE-N-TAKE equation (Eq. 1-15) combines sets with
/// bitwise AND/OR/ANDNOT only — no operation crosses bit lanes — so the
/// solution column of an item is a pure function of its *initial*
/// column across (TAKE_init, GIVE_init, STEAL_init). Two items with
/// identical initial columns therefore have identical solutions in all
/// 20 dataflow variables, and an item whose column is empty everywhere
/// (never taken, given, or stolen) solves to bottom in every variable.
///
/// This header computes that partition exactly — no hashing, so no
/// collision can ever merge two distinct columns — with one sweep of
/// Hopcroft-style refinement over the set bits of the init rows:
/// every item starts in class 0; each row splits every class it
/// intersects into members-in-the-row vs members-outside. The cost is
/// O(total set bits), independent of the universe width, and items the
/// sweep never touches stay in class 0, the trivially-bottom class.
///
/// The companion plans keep both directions of the translation at word
/// granularity. The expansion plan maps a row over the compressed
/// universe (one bit per class) back to the full universe as a list of
/// (DstBit, SrcBit, Len) segments — maximal runs of items whose
/// classes are consecutive — and the cover plan is the subset of those
/// segments (trimmed to first occurrences) that reads each class
/// exactly once, which turns init-row compression into the same
/// handful of word copies instead of a per-bit scatter. Classes are
/// numbered by first occurrence, so block-duplicated universes (the
/// common case for replicated array sections) translate as a few long
/// aligned segments in both directions. When every segment boundary is
/// word-aligned the expansion plan additionally compiles down to a
/// straight-line program of whole-word copies and zero fills
/// (compileExpandWordPlan / expandRowWords), eliminating the per-bit
/// funnel shifts and per-segment call overhead from the hot expansion
/// loop — with tens of thousands of result rows, that overhead, not
/// memory bandwidth, is what dominates a naive expansion.
///
/// The consumer is dataflow/GiveNTake.cpp's solveGiveNTakeCompressed;
/// nothing here depends on the solver.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SUPPORT_ITEMCLASSES_H
#define GNT_SUPPORT_ITEMCLASSES_H

#include "support/BitVector.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

namespace gnt {

/// The partition of an item universe into initial-column equivalence
/// classes.
struct ItemClasses {
  /// Size of the original universe.
  unsigned Universe = 0;

  /// Number of equivalence classes with at least one nonempty row bit,
  /// i.e. the compressed universe size. Does not count the trivially
  /// bottom class.
  unsigned NumClasses = 0;

  /// Items mapped to Bottom.
  unsigned Elided = 0;

  /// The refinement stopped early because the live class count passed
  /// the caller's abort threshold: the input is too incompressible for
  /// the partition to pay off, and finishing the sweep would only burn
  /// more time to confirm it. Only Universe, NumClasses (the live
  /// count at the abort) and this flag are meaningful; ClassOf and
  /// Representative are empty.
  bool Aborted = false;

  /// Sentinel in ClassOf for trivially-bottom items (their solution is
  /// bottom in every variable; they are elided from the compressed
  /// problem outright).
  static constexpr unsigned Bottom = ~0u;

  /// Class of each item, dense in [0, NumClasses) by first occurrence,
  /// or Bottom for elided items.
  std::vector<unsigned> ClassOf;

  /// One representative item per class (the lowest-numbered member).
  std::vector<unsigned> Representative;

  /// Items mapped to Bottom.
  unsigned elided() const { return Elided; }

  /// Whether compressing to NumClasses items is worth the expansion
  /// pass: require at least a 4x reduction of the universe. The
  /// compressed solve's fixed costs — partition (~0.1x of a full
  /// solve) and full-width expansion (~0.4x: the write floor of the
  /// result matrix) — are measured at roughly half a full solve, so
  /// the break-even sits near NumClasses == Universe/2; gating at
  /// Universe/4 keeps only decisive wins and, because the live class
  /// count grows monotonically during refinement, lets the abort
  /// probe on incompressible inputs stop a factor of two sooner.
  bool profitable() const {
    return !Aborted && Universe > 0 && NumClasses <= Universe / 4;
  }
};

/// One translation segment: \p Len full-universe bits starting at \p
/// DstBit correspond to the compressed bits starting at \p SrcBit
/// (items DstBit..DstBit+Len-1 have the consecutive classes
/// SrcBit..SrcBit+Len-1). Expansion writes the Dst side from the Src
/// side; the cover plan reads the Dst side to fill the Src side.
struct ExpandSeg {
  unsigned DstBit;
  unsigned SrcBit;
  unsigned Len;
};

/// Refines \p Classes (the per-item class assignment, initially all
/// zero) by the set bits of \p Row: every class with members both in
/// and out of the row is split. Class 0 doubles as the never-touched
/// class — buddies are numbered from 1 and an item can never return to
/// 0, so "still in class 0 after all rows" identifies the trivially
/// bottom items with no extra bookkeeping. \p Buddy maps a class to
/// its in-row twin for the duration of one row (grown once per row:
/// every class id read back inside the loop predates the row); \p
/// Touched lists the classes with a live twin so the reset stays
/// O(classes touched). Iterates the raw words directly — this loop is
/// the whole cost of compression on incompressible inputs, so it must
/// stay close to the O(set bits) floor.
///
/// \p BS and \p Live maintain an exact count of *live* (nonempty,
/// non-zero) classes. Unlike the raw NumClasses counter — which also
/// counts classes that later emptied out and therefore overshoots
/// badly on highly duplicated inputs — Live is monotone
/// nondecreasing: refinement only ever splits classes, so a split
/// either adds a live class (both halves nonempty) or renames one (the
/// old class emptied). That monotonicity is what makes Live a sound
/// early-abort signal: once it crosses the profitability threshold the
/// final partition is guaranteed to cross it too.
///
/// The per-class scratch (in-row buddy and member count) lives in one
/// struct so a split touches one cache line, and items are processed
/// in chunks: a scan pass extracts set bits and prefetches their
/// Classes slots, a second pass prefetches the class scratch, and only
/// then does the split run. Wide universes visit Classes at large
/// strides (an item's neighbors in a row are hundreds of indices
/// apart), so without the staging the refinement is one demand miss
/// per bit — and on incompressible inputs this loop is the entire cost
/// of finding out compression will not pay.
struct ClassSplit {
  unsigned Buddy;
  unsigned Count;
};

inline void refineByRow(const BitVector &Row, std::vector<unsigned> &Classes,
                        unsigned &NumClasses, std::vector<ClassSplit> &BS,
                        std::vector<unsigned> &Touched, unsigned &Live) {
  constexpr unsigned None = ~0u;
  if (BS.size() < NumClasses)
    BS.resize(NumClasses, {None, 0});
  const BitVector::Word *Ws = Row.words();
  const unsigned WC = Row.wordCount();
  unsigned Buf[256];
  unsigned WI = 0;
  while (WI != WC) {
    unsigned Cnt = 0;
    for (; WI != WC && Cnt <= 256 - BitVector::WordBits; ++WI) {
      // Init rows are sparse in wide universes; skip their zero
      // majority eight words at a time so the scan runs at memory
      // speed instead of one branch per word.
      if ((WI & 7) == 0 && WI + 8 <= WC) {
        BitVector::Word Any = Ws[WI] | Ws[WI + 1] | Ws[WI + 2] | Ws[WI + 3] |
                              Ws[WI + 4] | Ws[WI + 5] | Ws[WI + 6] |
                              Ws[WI + 7];
        if (!Any) {
          WI += 7;
          continue;
        }
      }
      for (BitVector::Word W = Ws[WI]; W; W &= W - 1) {
        unsigned Item = WI * BitVector::WordBits +
                        static_cast<unsigned>(__builtin_ctzll(W));
        __builtin_prefetch(&Classes[Item]);
        Buf[Cnt++] = Item;
      }
    }
    if (!Cnt)
      break;
    // Second staging pass: prefetch the class scratch, and notice the
    // all-still-untouched chunk — in the first sweep over a fresh
    // universe most rows split nothing but class 0, and that case
    // needs no per-item scratch traffic at all.
    bool AllUntouched = true;
    for (unsigned K = 0; K != Cnt; ++K) {
      unsigned C = Classes[Buf[K]];
      if (C != 0) {
        AllUntouched = false;
        __builtin_prefetch(&BS[C]);
      }
    }
    // Splits may append classes; reserving up front keeps the scratch
    // from reallocating mid-chunk (which would waste the prefetches).
    // Growth must stay geometric — an exact-fit reserve per chunk would
    // recopy the whole scratch every time.
    if (BS.capacity() < BS.size() + Cnt)
      BS.reserve(2 * (BS.size() + Cnt));
    if (AllUntouched) {
      unsigned B = BS[0].Buddy;
      if (B == None) {
        B = NumClasses++;
        BS[0].Buddy = B;
        Touched.push_back(0);
        BS.push_back({None, 0});
        ++Live;
      }
      for (unsigned K = 0; K != Cnt; ++K)
        Classes[Buf[K]] = B;
      BS[B].Count += Cnt;
      continue;
    }
    for (unsigned K = 0; K != Cnt; ++K) {
      unsigned Item = Buf[K];
      unsigned C = Classes[Item];
      unsigned B = BS[C].Buddy;
      if (B == None) {
        B = NumClasses++;
        BS[C].Buddy = B;
        Touched.push_back(C);
        BS.push_back({None, 0});
        ++Live;
      }
      Classes[Item] = B;
      ++BS[B].Count;
      // Class 0 is the untracked never-touched pool; it neither counts
      // as live nor dies.
      if (C != 0 && --BS[C].Count == 0)
        --Live;
    }
  }
  for (unsigned C : Touched)
    BS[C].Buddy = None;
  Touched.clear();
}

/// Partitions [0, Universe) into equivalence classes of identical
/// columns across all rows of \p TakeInit, \p GiveInit and \p StealInit
/// (each sized to the universe). Items never named by any row land in
/// the trivially-bottom class (ClassOf == Bottom).
///
/// \p AbortAboveClasses, when nonzero, stops the refinement as soon as
/// the live class count exceeds it (result has Aborted set and
/// profitable() false). Callers that only compress when the partition
/// lands at or below a threshold pass that threshold here: because the
/// live count is monotone nondecreasing under refinement (see
/// refineByRow), the abort can never suppress a partition that would
/// have been usable, and it caps the cost of discovering that an input
/// is incompressible at a fraction of a full sweep.
inline ItemClasses
computeItemClasses(unsigned Universe, const std::vector<BitVector> &TakeInit,
                   const std::vector<BitVector> &GiveInit,
                   const std::vector<BitVector> &StealInit,
                   unsigned AbortAboveClasses = 0) {
  ItemClasses R;
  R.Universe = Universe;
  if (Universe == 0)
    return R;

  std::vector<unsigned> Classes(Universe, 0);
  unsigned NumClasses = 1;
  unsigned Live = 0;
  std::vector<ClassSplit> BS;
  std::vector<unsigned> Touched;
  auto Sweep = [&](const std::vector<BitVector> &Rows) {
    for (const BitVector &Row : Rows) {
      assert(Row.size() == Universe && "row not sized to the universe");
      refineByRow(Row, Classes, NumClasses, BS, Touched, Live);
      if (AbortAboveClasses && Live > AbortAboveClasses)
        return false;
    }
    return true;
  };
  if (!Sweep(TakeInit) || !Sweep(GiveInit) || !Sweep(StealInit)) {
    R.Aborted = true;
    R.NumClasses = Live;
    return R;
  }

  // Renumber surviving classes densely by first occurrence and elide
  // the never-touched (class 0, trivially-bottom) items.
  R.ClassOf.assign(Universe, ItemClasses::Bottom);
  R.Representative.reserve(std::min(Live, Universe));
  std::vector<unsigned> Renumber(NumClasses, ItemClasses::Bottom);
  for (unsigned Item = 0; Item != Universe; ++Item) {
    unsigned C = Classes[Item];
    if (C == 0) {
      ++R.Elided;
      continue;
    }
    unsigned New = Renumber[C];
    if (New == ItemClasses::Bottom) {
      New = R.NumClasses++;
      Renumber[C] = New;
      R.Representative.push_back(Item);
    }
    R.ClassOf[Item] = New;
  }
  assert(R.NumClasses == Live && "live-class accounting out of sync");
  return R;
}

/// Builds the expansion plan for \p Classes: maximal segments of items
/// with consecutive class numbers. With first-occurrence numbering a
/// universe of K-fold duplicated blocks yields one segment per block.
inline std::vector<ExpandSeg> buildExpandPlan(const ItemClasses &Classes) {
  std::vector<ExpandSeg> Plan;
  const std::vector<unsigned> &Of = Classes.ClassOf;
  unsigned I = 0;
  while (I != Classes.Universe) {
    if (Of[I] == ItemClasses::Bottom) {
      ++I;
      continue;
    }
    unsigned Start = I;
    unsigned SrcStart = Of[I];
    ++I;
    while (I != Classes.Universe && Of[I] != ItemClasses::Bottom &&
           Of[I] == SrcStart + (I - Start))
      ++I;
    Plan.push_back({Start, SrcStart, I - Start});
  }
  return Plan;
}

/// Trims \p Plan (an expansion plan) down to a cover: the segment
/// pieces that read each class exactly once, in class order. Because
/// classes are numbered by first occurrence, scanning the plan left to
/// right sees every new class id in increasing order, so the uncovered
/// piece of any segment is always its [CovEnd, end) suffix and the
/// cover tiles [0, NumClasses) contiguously. Compressing an init row
/// is then one word-run read per cover segment (from the Dst/full side
/// into the Src/class side) instead of a per-bit scatter.
inline std::vector<ExpandSeg> buildCoverPlan(const std::vector<ExpandSeg> &Plan) {
  std::vector<ExpandSeg> Cover;
  unsigned CovEnd = 0;
  for (const ExpandSeg &S : Plan) {
    unsigned SegEnd = S.SrcBit + S.Len;
    if (SegEnd <= CovEnd)
      continue;
    assert(S.SrcBit <= CovEnd && "class ids not first-occurrence ordered");
    unsigned Skip = CovEnd - S.SrcBit;
    Cover.push_back({S.DstBit + Skip, CovEnd, SegEnd - CovEnd});
    CovEnd = SegEnd;
  }
  return Cover;
}

/// OR-copies \p Len bits from \p Src starting at bit \p SrcBit into \p
/// Dst starting at bit \p DstBit. The destination must already satisfy
/// the tail-word invariant for its own row width; bits outside the
/// target range are left untouched. Word-aligned segments degrade to
/// whole-word ORs.
inline void orCopyBits(BitVector::Word *Dst, unsigned DstBit,
                       const BitVector::Word *Src, unsigned SrcBit,
                       unsigned Len) {
  using Word = BitVector::Word;
  constexpr unsigned WB = BitVector::WordBits;
  if (Len == 0)
    return;

  // Fast path: both offsets word-aligned — stream whole words, mask
  // only the final partial word.
  if (DstBit % WB == 0 && SrcBit % WB == 0) {
    Word *D = Dst + DstBit / WB;
    const Word *S = Src + SrcBit / WB;
    unsigned Full = Len / WB;
    for (unsigned K = 0; K != Full; ++K)
      D[K] |= S[K];
    unsigned Rem = Len % WB;
    if (Rem)
      D[Full] |= S[Full] & (~Word(0) >> (WB - Rem));
    return;
  }

  // General path: read source bits through a funnel shift, OR masked
  // chunks into the destination one destination word at a time.
  unsigned Done = 0;
  while (Done != Len) {
    unsigned DBit = DstBit + Done;
    unsigned DWord = DBit / WB;
    unsigned DOff = DBit % WB;
    unsigned Chunk = std::min(Len - Done, WB - DOff);

    unsigned SBit = SrcBit + Done;
    unsigned SWord = SBit / WB;
    unsigned SOff = SBit % WB;
    Word V = Src[SWord] >> SOff;
    if (SOff && SOff + Chunk > WB)
      V |= Src[SWord + 1] << (WB - SOff);
    if (Chunk != WB)
      V &= (Word(1) << Chunk) - 1;
    Dst[DWord] |= V << DOff;
    Done += Chunk;
  }
}

/// Assign-copies \p Len bits from \p Src (of \p SrcWords words)
/// starting at bit \p SrcBit into \p Dst starting at bit \p DstBit.
/// Contract shared with zeroBits: bits *below* DstBit in the first
/// word are preserved, bits *above* DstBit+Len-1 in the last touched
/// word may be clobbered — callers tile a row strictly left to right,
/// so every clobbered bit is rewritten by a later segment or the final
/// zero fill. That contract is what lets the aligned fast path be a
/// bare memcpy and the general path one store per destination word,
/// with no read-modify-write traffic.
inline void copyBits(BitVector::Word *Dst, unsigned DstBit,
                     const BitVector::Word *Src, unsigned SrcBit,
                     unsigned SrcWords, unsigned Len) {
  using Word = BitVector::Word;
  constexpr unsigned WB = BitVector::WordBits;
  if (Len == 0)
    return;

  // Fast path: both offsets word-aligned — whole-word assignments,
  // rounding the tail up to a word (clobber above the range is
  // allowed). Short segments use a plain loop: a libc memcpy call per
  // 8-word segment costs more than the copy across the ~10^5 segment
  // copies of a full expansion.
  if (DstBit % WB == 0 && SrcBit % WB == 0) {
    Word *D = Dst + DstBit / WB;
    const Word *S = Src + SrcBit / WB;
    unsigned Words = (Len + WB - 1) / WB;
    if (Words > 32) {
      std::memcpy(D, S, static_cast<std::size_t>(Words) * sizeof(Word));
      return;
    }
    for (unsigned K = 0; K != Words; ++K)
      D[K] = S[K];
    return;
  }

  // Gathers the source word at bit SBit, guarding the high-word read
  // at the end of the source row (the guarded bits are never required:
  // SrcBit+Len is within the source).
  auto Gather = [&](unsigned SBit) {
    unsigned SWord = SBit / WB;
    unsigned SOff = SBit % WB;
    Word V = Src[SWord] >> SOff;
    if (SOff && SWord + 1 < SrcWords)
      V |= Src[SWord + 1] << (WB - SOff);
    return V;
  };

  unsigned Done = 0;
  unsigned DOff = DstBit % WB;
  if (DOff) {
    // Partial head word: preserve the bits below DstBit.
    Word Keep = (Word(1) << DOff) - 1;
    Dst[DstBit / WB] = (Dst[DstBit / WB] & Keep) | (Gather(SrcBit) << DOff);
    Done = WB - DOff;
  }
  while (Done < Len) {
    Dst[(DstBit + Done) / WB] = Gather(SrcBit + Done);
    Done += WB;
  }
}

/// Zeroes \p Len bits of \p Dst starting at bit \p DstBit under the
/// same tiling contract as copyBits: bits below DstBit survive, bits
/// above the range in the last touched word may be cleared too.
inline void zeroBits(BitVector::Word *Dst, unsigned DstBit, unsigned Len) {
  using Word = BitVector::Word;
  constexpr unsigned WB = BitVector::WordBits;
  if (Len == 0)
    return;
  unsigned DOff = DstBit % WB;
  if (DOff) {
    Dst[DstBit / WB] &= (Word(1) << DOff) - 1;
    unsigned Head = WB - DOff;
    if (Len <= Head)
      return;
    DstBit += Head;
    Len -= Head;
  }
  std::memset(Dst + DstBit / WB, 0,
              static_cast<std::size_t>((Len + WB - 1) / WB) * sizeof(Word));
}

/// Expands one compressed row of \p SrcWords words into a
/// (possibly uninitialized) full-universe row of \p DstWords words
/// using \p Plan. The segments and the gaps between them tile the row
/// left to right, so every destination word is written exactly once —
/// no memset-then-OR double pass. All-zero source rows (common: many
/// dataflow variables are bottom at most nodes) degrade to one memset.
/// The final zero fill runs to the end of the last word, establishing
/// the tail-word invariant the DataflowMatrix export relies on.
inline void expandRow(BitVector::Word *Dst, unsigned DstWords,
                      const BitVector::Word *Src, unsigned SrcWords,
                      const std::vector<ExpandSeg> &Plan) {
  bool Any = false;
  for (unsigned K = 0; K != SrcWords; ++K)
    if (Src[K]) {
      Any = true;
      break;
    }
  if (!Any) {
    std::memset(Dst, 0, static_cast<std::size_t>(DstWords) *
                            sizeof(BitVector::Word));
    return;
  }
  const unsigned RowBits = DstWords * BitVector::WordBits;
  unsigned Cursor = 0;
  for (const ExpandSeg &Seg : Plan) {
    if (Seg.DstBit != Cursor)
      zeroBits(Dst, Cursor, Seg.DstBit - Cursor);
    copyBits(Dst, Seg.DstBit, Src, Seg.SrcBit, SrcWords, Seg.Len);
    Cursor = Seg.DstBit + Seg.Len;
  }
  if (Cursor != RowBits)
    zeroBits(Dst, Cursor, RowBits - Cursor);
}

/// One step of a compiled whole-word expansion program: assign \p
/// NumWords words at Dst+DstWord from Src+SrcWord, or zero-fill them
/// when SrcWord is ZeroFill.
struct ExpandWordOp {
  unsigned DstWord;
  unsigned SrcWord;
  unsigned NumWords;
  static constexpr unsigned ZeroFill = ~0u;
};

/// Compiles \p Plan into a whole-word program covering [0, DstWords):
/// copies for the segments, zero fills for the gaps and the elided
/// tail, in destination order, so executing the ops left to right
/// assigns every destination word exactly once. Compilation requires
/// every segment boundary (DstBit, SrcBit, Len) to be word-aligned —
/// the common case for block-duplicated universes whose block size is
/// a multiple of the word width — and returns an empty program
/// otherwise; callers then fall back to the bit-granular expandRow.
inline std::vector<ExpandWordOp>
compileExpandWordPlan(const std::vector<ExpandSeg> &Plan, unsigned DstWords) {
  constexpr unsigned WB = BitVector::WordBits;
  std::vector<ExpandWordOp> Ops;
  Ops.reserve(2 * Plan.size() + 1);
  unsigned Cursor = 0;
  for (const ExpandSeg &S : Plan) {
    if (S.DstBit % WB || S.SrcBit % WB || S.Len % WB)
      return {};
    unsigned DW = S.DstBit / WB;
    if (DW > Cursor)
      Ops.push_back({Cursor, ExpandWordOp::ZeroFill, DW - Cursor});
    Ops.push_back({DW, S.SrcBit / WB, S.Len / WB});
    Cursor = DW + S.Len / WB;
  }
  if (Cursor < DstWords)
    Ops.push_back({Cursor, ExpandWordOp::ZeroFill, DstWords - Cursor});
  return Ops;
}

/// Expands one compressed row of \p SrcWords words into a (possibly
/// uninitialized) full-universe row of \p DstWords words by executing
/// a compiled word program. Equivalent to expandRow over the plan the
/// program was compiled from, but with no per-bit work at all: the
/// inner loops are bare word assignments and memsets, which is what
/// keeps a full expansion (rows x plan segments, easily 10^5 ops)
/// near the arena's write-bandwidth floor. All-zero source rows
/// (common: many dataflow variables are bottom at most nodes) degrade
/// to a single memset.
inline void expandRowWords(BitVector::Word *Dst, unsigned DstWords,
                           const BitVector::Word *Src, unsigned SrcWords,
                           const std::vector<ExpandWordOp> &Ops) {
  using Word = BitVector::Word;
  bool Any = false;
  for (unsigned K = 0; K != SrcWords; ++K)
    if (Src[K]) {
      Any = true;
      break;
    }
  if (!Any) {
    std::memset(Dst, 0, static_cast<std::size_t>(DstWords) * sizeof(Word));
    return;
  }
  for (const ExpandWordOp &Op : Ops) {
    Word *D = Dst + Op.DstWord;
    if (Op.SrcWord == ExpandWordOp::ZeroFill) {
      std::memset(D, 0, static_cast<std::size_t>(Op.NumWords) * sizeof(Word));
      continue;
    }
    const Word *S = Src + Op.SrcWord;
    // Same threshold as copyBits: a libc memcpy call per short segment
    // costs more than the copy itself.
    if (Op.NumWords > 32) {
      std::memcpy(D, S, static_cast<std::size_t>(Op.NumWords) * sizeof(Word));
      continue;
    }
    for (unsigned K = 0; K != Op.NumWords; ++K)
      D[K] = S[K];
  }
}

} // namespace gnt

#endif // GNT_SUPPORT_ITEMCLASSES_H
