//===- support/BitVector.h - Dense dynamic bit vector ----------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, dynamically sized bit vector used to represent sets over the
/// dataflow universe. All GIVE-N-TAKE equations are unions, intersections
/// and differences of these sets, so this type is the workhorse of the
/// whole framework. The interface follows the spirit of llvm::BitVector.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SUPPORT_BITVECTOR_H
#define GNT_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace gnt {

/// Dense bit vector with set-algebra operations.
///
/// The vector has a fixed logical size (number of bits) established at
/// construction or via resize(); all binary operations require both
/// operands to have the same size.
class BitVector {
public:
  using Word = std::uint64_t;
  static constexpr unsigned WordBits = 64;

  BitVector() = default;

  /// Creates a vector of \p NumBits bits, all initialized to \p Value.
  explicit BitVector(unsigned NumBits, bool Value = false) {
    resize(NumBits, Value);
  }

  /// Number of bits in the vector.
  unsigned size() const { return NumBits; }

  /// Grows or shrinks the vector to \p NewSize bits; new bits get \p Value.
  void resize(unsigned NewSize, bool Value = false) {
    unsigned OldSize = NumBits;
    Words.resize(numWords(NewSize), Value ? ~Word(0) : Word(0));
    NumBits = NewSize;
    if (Value && OldSize < NewSize && OldSize % WordBits != 0) {
      // The old partial tail word must have its fresh high bits set.
      Words[OldSize / WordBits] |= ~Word(0) << (OldSize % WordBits);
    }
    clearExcessBits();
  }

  /// Sets bit \p Idx.
  void set(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / WordBits] |= Word(1) << (Idx % WordBits);
  }

  /// Sets all bits.
  void set() {
    for (Word &W : Words)
      W = ~Word(0);
    clearExcessBits();
  }

  /// Clears bit \p Idx.
  void reset(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / WordBits] &= ~(Word(1) << (Idx % WordBits));
  }

  /// Clears all bits.
  void reset() {
    for (Word &W : Words)
      W = 0;
  }

  /// Returns the value of bit \p Idx.
  bool test(unsigned Idx) const {
    assert(Idx < NumBits && "bit index out of range");
    return (Words[Idx / WordBits] >> (Idx % WordBits)) & 1;
  }

  bool operator[](unsigned Idx) const { return test(Idx); }

  /// Returns true if any bit is set.
  bool any() const {
    for (Word W : Words)
      if (W)
        return true;
    return false;
  }

  /// Returns true if no bit is set.
  bool none() const { return !any(); }

  /// Returns true if every bit is set.
  bool all() const { return count() == NumBits; }

  /// Number of set bits.
  unsigned count() const {
    unsigned N = 0;
    for (Word W : Words)
      N += __builtin_popcountll(W);
    return N;
  }

  /// Set union: this |= RHS.
  BitVector &operator|=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      Words[I] |= RHS.Words[I];
    return *this;
  }

  /// Set intersection: this &= RHS.
  BitVector &operator&=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= RHS.Words[I];
    return *this;
  }

  /// Set difference: removes from this every bit set in \p RHS.
  BitVector &reset(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= ~RHS.Words[I];
    return *this;
  }

  bool operator==(const BitVector &RHS) const {
    assert(NumBits == RHS.NumBits && "size mismatch");
    return Words == RHS.Words;
  }
  bool operator!=(const BitVector &RHS) const { return !(*this == RHS); }

  /// Returns true if this and \p RHS share any set bit.
  bool anyCommon(const BitVector &RHS) const {
    assert(NumBits == RHS.NumBits && "size mismatch");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      if (Words[I] & RHS.Words[I])
        return true;
    return false;
  }

  /// Returns true if every set bit of this is also set in \p RHS.
  bool isSubsetOf(const BitVector &RHS) const {
    assert(NumBits == RHS.NumBits && "size mismatch");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      if (Words[I] & ~RHS.Words[I])
        return false;
    return true;
  }

  /// Index of the first set bit, or -1 if none.
  int findFirst() const { return findNext(-1); }

  /// Index of the first set bit strictly after \p Prev, or -1 if none.
  int findNext(int Prev) const {
    unsigned Start = static_cast<unsigned>(Prev + 1);
    if (Start >= NumBits)
      return -1;
    unsigned WordIdx = Start / WordBits;
    Word W = Words[WordIdx] & (~Word(0) << (Start % WordBits));
    while (true) {
      if (W)
        return static_cast<int>(WordIdx * WordBits + __builtin_ctzll(W));
      if (++WordIdx == Words.size())
        return -1;
      W = Words[WordIdx];
    }
  }

  /// Iterator over the indices of set bits, for range-for loops.
  class SetBitIterator {
  public:
    SetBitIterator(const BitVector &BV, int Idx) : BV(&BV), Idx(Idx) {}
    unsigned operator*() const { return static_cast<unsigned>(Idx); }
    SetBitIterator &operator++() {
      Idx = BV->findNext(Idx);
      return *this;
    }
    bool operator!=(const SetBitIterator &RHS) const { return Idx != RHS.Idx; }

  private:
    const BitVector *BV;
    int Idx;
  };

  SetBitIterator begin() const { return SetBitIterator(*this, findFirst()); }
  SetBitIterator end() const { return SetBitIterator(*this, -1); }

private:
  static unsigned numWords(unsigned Bits) {
    return (Bits + WordBits - 1) / WordBits;
  }

  /// Bits beyond NumBits in the last word must stay zero so that count()
  /// and operator== behave.
  void clearExcessBits() {
    if (NumBits % WordBits != 0 && !Words.empty())
      Words.back() &= ~Word(0) >> (WordBits - NumBits % WordBits);
  }

  std::vector<Word> Words;
  unsigned NumBits = 0;
};

/// Returns A | B as a new vector.
inline BitVector unionOf(const BitVector &A, const BitVector &B) {
  BitVector R = A;
  R |= B;
  return R;
}

/// Returns A & B as a new vector.
inline BitVector intersectionOf(const BitVector &A, const BitVector &B) {
  BitVector R = A;
  R &= B;
  return R;
}

/// Returns A - B (set difference) as a new vector.
inline BitVector differenceOf(const BitVector &A, const BitVector &B) {
  BitVector R = A;
  R.reset(B);
  return R;
}

} // namespace gnt

#endif // GNT_SUPPORT_BITVECTOR_H
