//===- support/BitVector.h - Dense dynamic bit vector ----------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, dynamically sized bit vector used to represent sets over the
/// dataflow universe. All GIVE-N-TAKE equations are unions, intersections
/// and differences of these sets, so this type is the workhorse of the
/// whole framework. The interface follows the spirit of llvm::BitVector.
///
/// Storage is either owned (the default) or borrowed from an external
/// word row (see borrowWords), which lets the arena-backed solver expose
/// its rows as BitVectors without copying. Borrowing is invisible to
/// users: copies always deep-copy into owned storage, comparisons and
/// set algebra read through whichever storage is active, and resize()
/// first materializes an owned copy. The borrower is responsible for
/// keeping the external row alive and tail-masked.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SUPPORT_BITVECTOR_H
#define GNT_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace gnt {

/// Dense bit vector with set-algebra operations.
///
/// The vector has a fixed logical size (number of bits) established at
/// construction or via resize(); all binary operations require both
/// operands to have the same size.
class BitVector {
public:
  using Word = std::uint64_t;
  static constexpr unsigned WordBits = 64;

  BitVector() = default;

  /// Creates a vector of \p NumBits bits, all initialized to \p Value.
  explicit BitVector(unsigned NumBits, bool Value = false) {
    resize(NumBits, Value);
  }

  /// Deep copy: a copy always owns its words, even when the source
  /// borrows them.
  BitVector(const BitVector &RHS)
      : Owned(RHS.words(), RHS.words() + RHS.wordCount()), Ext(nullptr),
        NumBits(RHS.NumBits) {}

  BitVector &operator=(const BitVector &RHS) {
    if (this != &RHS) {
      Owned.assign(RHS.words(), RHS.words() + RHS.wordCount());
      Ext = nullptr;
      NumBits = RHS.NumBits;
    }
    return *this;
  }

  /// Moves transfer storage as-is; a moved borrowed vector keeps
  /// pointing at the same external row.
  BitVector(BitVector &&) = default;
  BitVector &operator=(BitVector &&) = default;

  /// Creates a vector of \p NumBits bits initialized from the packed
  /// words at \p Src (numWords(NumBits) of them). Bits of the last word
  /// beyond \p NumBits are ignored.
  static BitVector fromWords(const Word *Src, unsigned NumBits) {
    // Single-write construction: assign copies the source words without
    // the zero-fill a resize-then-overwrite would do.
    BitVector R;
    R.Owned.assign(Src, Src + numWords(NumBits));
    R.NumBits = NumBits;
    R.clearExcessBits();
    return R;
  }

  /// Creates a vector of \p NumBits bits that aliases the
  /// numWords(NumBits) words at \p Row instead of copying them. The
  /// caller guarantees the row outlives every borrowed view and already
  /// satisfies the tail-word invariant (bits beyond \p NumBits zero).
  /// Mutations write through to the row; copying the vector or calling
  /// resize() detaches into owned storage.
  static BitVector borrowWords(Word *Row, unsigned NumBits) {
    BitVector R;
    R.Ext = Row;
    R.NumBits = NumBits;
    return R;
  }

  /// Number of bits in the vector.
  unsigned size() const { return NumBits; }

  /// Grows or shrinks the vector to \p NewSize bits; new bits get \p Value.
  void resize(unsigned NewSize, bool Value = false) {
    materialize();
    unsigned OldSize = NumBits;
    Owned.resize(numWords(NewSize), Value ? ~Word(0) : Word(0));
    NumBits = NewSize;
    if (Value && OldSize < NewSize && OldSize % WordBits != 0) {
      // The old partial tail word must have its fresh high bits set.
      Owned[OldSize / WordBits] |= ~Word(0) << (OldSize % WordBits);
    }
    clearExcessBits();
  }

  /// Sets bit \p Idx.
  void set(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    wordsData()[Idx / WordBits] |= Word(1) << (Idx % WordBits);
  }

  /// Sets all bits.
  void set() {
    Word *W = wordsData();
    for (unsigned I = 0, E = wordCount(); I != E; ++I)
      W[I] = ~Word(0);
    clearExcessBits();
  }

  /// Clears bit \p Idx.
  void reset(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    wordsData()[Idx / WordBits] &= ~(Word(1) << (Idx % WordBits));
  }

  /// Clears all bits.
  void reset() {
    Word *W = wordsData();
    for (unsigned I = 0, E = wordCount(); I != E; ++I)
      W[I] = 0;
  }

  /// Complements every bit, respecting the tail-word invariant.
  void flip() {
    Word *W = wordsData();
    for (unsigned I = 0, E = wordCount(); I != E; ++I)
      W[I] = ~W[I];
    clearExcessBits();
  }

  /// Returns the value of bit \p Idx.
  bool test(unsigned Idx) const {
    assert(Idx < NumBits && "bit index out of range");
    return (words()[Idx / WordBits] >> (Idx % WordBits)) & 1;
  }

  bool operator[](unsigned Idx) const { return test(Idx); }

  /// Returns true if any bit is set.
  bool any() const {
    const Word *W = words();
    for (unsigned I = 0, E = wordCount(); I != E; ++I)
      if (W[I])
        return true;
    return false;
  }

  /// Returns true if no bit is set.
  bool none() const { return !any(); }

  /// Returns true if every bit is set.
  bool all() const { return count() == NumBits; }

  /// Number of set bits.
  unsigned count() const {
    unsigned N = 0;
    const Word *W = words();
    for (unsigned I = 0, E = wordCount(); I != E; ++I)
      N += __builtin_popcountll(W[I]);
    return N;
  }

  /// Set union: this |= RHS.
  BitVector &operator|=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    Word *W = wordsData();
    const Word *R = RHS.words();
    for (unsigned I = 0, E = wordCount(); I != E; ++I)
      W[I] |= R[I];
    return *this;
  }

  /// Set intersection: this &= RHS.
  BitVector &operator&=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    Word *W = wordsData();
    const Word *R = RHS.words();
    for (unsigned I = 0, E = wordCount(); I != E; ++I)
      W[I] &= R[I];
    return *this;
  }

  /// Set difference: removes from this every bit set in \p RHS.
  BitVector &reset(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    Word *W = wordsData();
    const Word *R = RHS.words();
    for (unsigned I = 0, E = wordCount(); I != E; ++I)
      W[I] &= ~R[I];
    return *this;
  }

  bool operator==(const BitVector &RHS) const {
    assert(NumBits == RHS.NumBits && "size mismatch");
    const Word *A = words();
    const Word *B = RHS.words();
    for (unsigned I = 0, E = wordCount(); I != E; ++I)
      if (A[I] != B[I])
        return false;
    return true;
  }
  bool operator!=(const BitVector &RHS) const { return !(*this == RHS); }

  /// Returns true if this and \p RHS share any set bit.
  bool anyCommon(const BitVector &RHS) const {
    assert(NumBits == RHS.NumBits && "size mismatch");
    const Word *A = words();
    const Word *B = RHS.words();
    for (unsigned I = 0, E = wordCount(); I != E; ++I)
      if (A[I] & B[I])
        return true;
    return false;
  }

  /// Returns true if every set bit of this is also set in \p RHS.
  bool isSubsetOf(const BitVector &RHS) const {
    assert(NumBits == RHS.NumBits && "size mismatch");
    const Word *A = words();
    const Word *B = RHS.words();
    for (unsigned I = 0, E = wordCount(); I != E; ++I)
      if (A[I] & ~B[I])
        return false;
    return true;
  }

  /// Index of the first set bit, or -1 if none.
  int findFirst() const { return findNext(-1); }

  /// Index of the first set bit strictly after \p Prev, or -1 if none.
  int findNext(int Prev) const {
    unsigned Start = static_cast<unsigned>(Prev + 1);
    if (Start >= NumBits)
      return -1;
    const Word *Ws = words();
    unsigned WordIdx = Start / WordBits;
    Word W = Ws[WordIdx] & (~Word(0) << (Start % WordBits));
    while (true) {
      if (W)
        return static_cast<int>(WordIdx * WordBits + __builtin_ctzll(W));
      if (++WordIdx == wordCount())
        return -1;
      W = Ws[WordIdx];
    }
  }

  /// Iterator over the indices of set bits, for range-for loops.
  class SetBitIterator {
  public:
    SetBitIterator(const BitVector &BV, int Idx) : BV(&BV), Idx(Idx) {}
    unsigned operator*() const { return static_cast<unsigned>(Idx); }
    SetBitIterator &operator++() {
      Idx = BV->findNext(Idx);
      return *this;
    }
    bool operator!=(const SetBitIterator &RHS) const { return Idx != RHS.Idx; }

  private:
    const BitVector *BV;
    int Idx;
  };

  SetBitIterator begin() const { return SetBitIterator(*this, findFirst()); }
  SetBitIterator end() const { return SetBitIterator(*this, -1); }

  /// Number of storage words (numWords(size())).
  unsigned wordCount() const { return numWords(NumBits); }

  /// Read-only view of the packed words. Bits beyond size() in the last
  /// word are guaranteed zero (the tail-word invariant).
  const Word *words() const { return Ext ? Ext : Owned.data(); }

  /// Mutable view of the packed words, for word-granular writers.
  /// Callers must keep the tail-word invariant: bits beyond size() stay
  /// zero. On a borrowed vector this is the external row itself.
  Word *wordsData() { return Ext ? Ext : Owned.data(); }

  /// Returns the word-aligned sub-vector of \p SliceBits bits starting
  /// at word \p FirstWord (bit FirstWord * 64). The slice's words must
  /// all exist.
  BitVector sliceWords(unsigned FirstWord, unsigned SliceBits) const {
    assert(FirstWord + numWords(SliceBits) <= wordCount() &&
           "slice out of range");
    return fromWords(words() + FirstWord, SliceBits);
  }

private:
  static unsigned numWords(unsigned Bits) {
    return (Bits + WordBits - 1) / WordBits;
  }

  /// Detaches a borrowed vector into owned storage.
  void materialize() {
    if (!Ext)
      return;
    Owned.assign(Ext, Ext + wordCount());
    Ext = nullptr;
  }

  /// Bits beyond NumBits in the last word must stay zero so that count()
  /// and operator== behave.
  void clearExcessBits() {
    if (NumBits % WordBits != 0)
      wordsData()[NumBits / WordBits] &=
          ~Word(0) >> (WordBits - NumBits % WordBits);
  }

  std::vector<Word> Owned; ///< Owned storage; unused while borrowing.
  Word *Ext = nullptr;     ///< Borrowed row; nullptr when owned.
  unsigned NumBits = 0;
};

/// Returns A | B as a new vector.
inline BitVector unionOf(const BitVector &A, const BitVector &B) {
  BitVector R = A;
  R |= B;
  return R;
}

/// Returns A & B as a new vector.
inline BitVector intersectionOf(const BitVector &A, const BitVector &B) {
  BitVector R = A;
  R &= B;
  return R;
}

/// Returns A - B (set difference) as a new vector.
inline BitVector differenceOf(const BitVector &A, const BitVector &B) {
  BitVector R = A;
  R.reset(B);
  return R;
}

} // namespace gnt

#endif // GNT_SUPPORT_BITVECTOR_H
