//===- support/JsonParse.h - Minimal JSON parser ---------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON reader, the input-side counterpart of
/// Json.h's writer. The compilation service (`gntd`) reads one request
/// object per line and the tests round-trip its responses and metrics,
/// so the vocabulary is objects, arrays, strings, numbers, booleans and
/// null — a self-contained parser beats an external dependency.
/// Integral numbers are kept exactly (long long); numbers with a
/// fraction or exponent are kept as double.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SUPPORT_JSONPARSE_H
#define GNT_SUPPORT_JSONPARSE_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gnt {

/// A parsed JSON value. Object keys are kept in a sorted map: request
/// canonicalization relies on key order being content-determined.
struct JsonValue {
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Kind K = Kind::Null;
  bool B = false;
  long long I = 0;
  double D = 0;
  std::string S;
  std::vector<JsonValue> Elems;
  std::map<std::string, JsonValue> Fields;

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }

  /// Numeric value regardless of integral/fractional representation.
  double asDouble() const { return K == Kind::Int ? static_cast<double>(I) : D; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Field lookup on objects; nullptr when absent or not an object.
  const JsonValue *field(const std::string &Name) const {
    if (K != Kind::Object)
      return nullptr;
    auto It = Fields.find(Name);
    return It == Fields.end() ? nullptr : &It->second;
  }
};

/// Outcome of a parse: a value, or an error with a byte offset.
struct JsonParseResult {
  JsonValue Value;
  std::string Error;
  size_t ErrorOffset = 0;

  bool success() const { return Error.empty(); }
};

namespace detail {

class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : Text(Text) {}

  JsonParseResult run() {
    JsonParseResult R;
    R.Value = parseValue(R);
    if (!R.success())
      return R;
    skipSpace();
    if (Pos != Text.size())
      fail(R, "trailing characters after JSON value");
    return R;
  }

private:
  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  void fail(JsonParseResult &R, const std::string &Msg) {
    if (R.Error.empty()) {
      R.Error = Msg;
      R.ErrorOffset = Pos;
    }
  }

  bool literal(const char *Word) {
    size_t Len = std::char_traits<char>::length(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  JsonValue parseValue(JsonParseResult &R) {
    skipSpace();
    JsonValue V;
    if (Pos >= Text.size()) {
      fail(R, "unexpected end of input");
      return V;
    }
    char C = Text[Pos];
    if (C == '{')
      return parseObject(R);
    if (C == '[')
      return parseArray(R);
    if (C == '"') {
      V.K = JsonValue::Kind::String;
      V.S = parseString(R);
      return V;
    }
    if (C == 't' && literal("true")) {
      V.K = JsonValue::Kind::Bool;
      V.B = true;
      return V;
    }
    if (C == 'f' && literal("false")) {
      V.K = JsonValue::Kind::Bool;
      V.B = false;
      return V;
    }
    if (C == 'n' && literal("null"))
      return V;
    if (C == '-' || (C >= '0' && C <= '9'))
      return parseNumber(R);
    fail(R, std::string("unexpected character '") + C + "'");
    return V;
  }

  JsonValue parseNumber(JsonParseResult &R) {
    JsonValue V;
    V.K = JsonValue::Kind::Int;
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    size_t DigitsStart = Pos;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      ++Pos;
    if (Pos == DigitsStart) {
      fail(R, "malformed number");
      return V;
    }
    bool Fractional = false;
    if (Pos < Text.size() && Text[Pos] == '.') {
      Fractional = true;
      ++Pos;
      size_t FracStart = Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
      if (Pos == FracStart) {
        fail(R, "malformed number");
        return V;
      }
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      Fractional = true;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      size_t ExpStart = Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
      if (Pos == ExpStart) {
        fail(R, "malformed number");
        return V;
      }
    }
    std::string Tok = Text.substr(Start, Pos - Start);
    if (Fractional) {
      V.K = JsonValue::Kind::Double;
      V.D = std::stod(Tok);
    } else {
      V.I = std::stoll(Tok);
    }
    return V;
  }

  std::string parseString(JsonParseResult &R) {
    std::string Out;
    ++Pos; // opening quote
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C == '\\') {
        if (Pos >= Text.size())
          break;
        char E = Text[Pos++];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          if (Pos + 4 > Text.size()) {
            fail(R, "truncated \\u escape");
            return Out;
          }
          unsigned Code = 0;
          for (int I = 0; I < 4; ++I) {
            char H = Text[Pos++];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= static_cast<unsigned>(H - 'A' + 10);
            else {
              fail(R, "bad hex digit in \\u escape");
              return Out;
            }
          }
          // UTF-8 encode the code point (no surrogate pairing; the
          // writer only emits \u00xx control escapes).
          if (Code < 0x80) {
            Out += static_cast<char>(Code);
          } else if (Code < 0x800) {
            Out += static_cast<char>(0xC0 | (Code >> 6));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (Code >> 12));
            Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          fail(R, std::string("unknown escape \\") + E);
          return Out;
        }
      } else {
        Out += C;
      }
    }
    fail(R, "unterminated string");
    return Out;
  }

  JsonValue parseObject(JsonParseResult &R) {
    JsonValue V;
    V.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return V;
    }
    while (true) {
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != '"') {
        fail(R, "expected object key");
        return V;
      }
      std::string Key = parseString(R);
      if (!R.success())
        return V;
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != ':') {
        fail(R, "expected ':' after object key");
        return V;
      }
      ++Pos;
      V.Fields[Key] = parseValue(R);
      if (!R.success())
        return V;
      skipSpace();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return V;
      }
      fail(R, "expected ',' or '}' in object");
      return V;
    }
  }

  JsonValue parseArray(JsonParseResult &R) {
    JsonValue V;
    V.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return V;
    }
    while (true) {
      V.Elems.push_back(parseValue(R));
      if (!R.success())
        return V;
      skipSpace();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return V;
      }
      fail(R, "expected ',' or ']' in array");
      return V;
    }
  }

  const std::string &Text;
  size_t Pos = 0;
};

} // namespace detail

/// Parses \p Text as one JSON value.
inline JsonParseResult parseJson(const std::string &Text) {
  return detail::JsonParser(Text).run();
}

} // namespace gnt

#endif // GNT_SUPPORT_JSONPARSE_H
