//===- support/ThreadPool.h - Fixed-size worker thread pool ----*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool for the batch compilation service.
/// Jobs are opaque closures executed FIFO by whichever worker frees up
/// first; wait() blocks until every submitted job has finished, so a
/// batch can be fanned out and then joined without tearing the pool
/// down. With zero workers the pool degrades to inline execution in the
/// submitting thread, which keeps single-threaded runs trivially
/// deterministic and easy to debug.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SUPPORT_THREADPOOL_H
#define GNT_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gnt {

class ThreadPool {
public:
  /// Spawns \p Workers threads; 0 means run jobs inline in submit().
  explicit ThreadPool(unsigned Workers) {
    Threads.reserve(Workers);
    for (unsigned I = 0; I < Workers; ++I)
      Threads.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Drains the queue, then joins every worker.
  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> Lock(M);
      Stopping = true;
    }
    WorkReady.notify_all();
    for (std::thread &T : Threads)
      T.join();
  }

  unsigned workers() const { return static_cast<unsigned>(Threads.size()); }

  /// Enqueues \p Job. Runs it inline when the pool has no workers.
  void submit(std::function<void()> Job) {
    if (Threads.empty()) {
      Job();
      return;
    }
    {
      std::unique_lock<std::mutex> Lock(M);
      Queue.push_back(std::move(Job));
      ++Pending;
    }
    WorkReady.notify_one();
  }

  /// Blocks until every job submitted so far has finished executing.
  void wait() {
    std::unique_lock<std::mutex> Lock(M);
    Idle.wait(Lock, [this] { return Pending == 0; });
  }

private:
  void workerLoop() {
    while (true) {
      std::function<void()> Job;
      {
        std::unique_lock<std::mutex> Lock(M);
        WorkReady.wait(Lock, [this] { return Stopping || !Queue.empty(); });
        if (Queue.empty())
          return; // Stopping and drained.
        Job = std::move(Queue.front());
        Queue.pop_front();
      }
      Job();
      {
        std::unique_lock<std::mutex> Lock(M);
        if (--Pending == 0)
          Idle.notify_all();
      }
    }
  }

  std::mutex M;
  std::condition_variable WorkReady;
  std::condition_variable Idle;
  std::deque<std::function<void()>> Queue;
  unsigned Pending = 0;
  bool Stopping = false;
  std::vector<std::thread> Threads;
};

} // namespace gnt

#endif // GNT_SUPPORT_THREADPOOL_H
