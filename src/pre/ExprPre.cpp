//===- pre/ExprPre.cpp - Classical PRE on GIVE-N-TAKE ------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pre/ExprPre.h"

#include "ir/AstPrinter.h"
#include "support/Support.h"

#include <map>
#include <set>

using namespace gnt;

namespace {

/// True for expressions PRE may evaluate speculatively: arithmetic
/// without division (the paper's "unless the computation may change the
/// meaning of the program, for example by introducing a division by
/// zero").
bool isSpeculable(const Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::Var:
    return true;
  case Expr::Kind::ArrayRef:
    return isSpeculable(cast<ArrayRefExpr>(E)->getSubscript());
  case Expr::Kind::Unary:
    return isSpeculable(cast<UnaryExpr>(E)->getOperand());
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->getOp() == BinaryExpr::Op::Div)
      return false;
    switch (B->getOp()) {
    case BinaryExpr::Op::Add:
    case BinaryExpr::Op::Sub:
    case BinaryExpr::Op::Mul:
      break;
    default:
      return false; // Comparisons are not worth a temporary.
    }
    return isSpeculable(B->getLHS()) && isSpeculable(B->getRHS());
  }
  case Expr::Kind::Call:
    return false; // Opaque calls may have arbitrary behavior.
  }
  gntUnreachable("covered switch");
}

/// Collects the scalar and array names an expression depends on.
void collectOperands(const Expr *E, std::set<std::string> &Scalars,
                     std::set<std::string> &Arrays) {
  forEachExpr(E, [&](const Expr *Sub) {
    if (const auto *V = dyn_cast<VarExpr>(Sub))
      Scalars.insert(V->getName());
    else if (const auto *A = dyn_cast<ArrayRefExpr>(Sub))
      Arrays.insert(A->getArray());
  });
}

class PreAnalyzer {
public:
  PreAnalyzer(const Program &P, const Cfg &G, ExprPreResult &R)
      : P(P), G(G), R(R) {
    collectStmtNodes();
  }

  GntProblem buildProblem() {
    walk(P.getBody());
    // With the item universe known, place the steals.
    GntProblem Prob(G.size(), static_cast<unsigned>(R.Exprs.size()));
    for (const auto &[Node, Items] : Takes)
      for (unsigned I : Items)
        Prob.TakeInit[Node].set(I);
    for (unsigned I = 0; I != R.Exprs.size(); ++I) {
      const Deps &D = ItemDeps[I];
      // Assignments to operands kill the expression.
      for (const auto &[Node, Killed] : Kills)
        for (const std::string &Name : Killed)
          if (D.Scalars.count(Name) || D.Arrays.count(Name))
            Prob.StealInit[Node].set(I);
      // Loops kill index-dependent expressions per iteration (latch) and
      // at their boundary (header).
      for (const auto &[Idx, Nodes] : LoopKillNodes)
        if (D.Scalars.count(Idx))
          for (NodeId Node : Nodes)
            Prob.StealInit[Node].set(I);
    }
    R.Occurrences.assign(R.Exprs.size(), 0);
    for (const auto &[Node, Items] : Takes)
      for (unsigned I : Items)
        ++R.Occurrences[I];
    return Prob;
  }

private:
  struct Deps {
    std::set<std::string> Scalars, Arrays;
  };

  void collectStmtNodes() {
    for (NodeId Id = 0; Id != G.size(); ++Id) {
      const CfgNode &N = G.node(Id);
      if (!N.S)
        continue;
      switch (N.Kind) {
      case NodeKind::Stmt:
      case NodeKind::Branch:
        StmtNode[N.S] = Id;
        break;
      case NodeKind::LoopHeader:
        HeaderNode[N.S] = Id;
        break;
      case NodeKind::LoopLatch:
        LatchNode[N.S] = Id;
        break;
      default:
        break;
      }
    }
  }

  unsigned internExpr(const Expr *E) {
    std::string Key = AstPrinter::printExpr(E);
    auto It = ByKey.find(Key);
    if (It != ByKey.end())
      return It->second;
    unsigned Id = static_cast<unsigned>(R.Exprs.size());
    R.Exprs.push_back(Key);
    ByKey.emplace(Key, Id);
    Deps D;
    collectOperands(E, D.Scalars, D.Arrays);
    ItemDeps.push_back(std::move(D));
    return Id;
  }

  /// Registers every maximal speculable binary expression in \p E as an
  /// occurrence at \p Node (classic lexical PRE granularity).
  void scanExpr(const Expr *E, NodeId Node) {
    if (!E)
      return;
    if (E->getKind() == Expr::Kind::Binary && isSpeculable(E)) {
      Takes[Node].push_back(internExpr(E));
      return; // Subexpressions are covered by the enclosing temporary.
    }
    switch (E->getKind()) {
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      scanExpr(B->getLHS(), Node);
      scanExpr(B->getRHS(), Node);
      break;
    }
    case Expr::Kind::Unary:
      scanExpr(cast<UnaryExpr>(E)->getOperand(), Node);
      break;
    case Expr::Kind::ArrayRef:
      scanExpr(cast<ArrayRefExpr>(E)->getSubscript(), Node);
      break;
    case Expr::Kind::Call:
      for (const ExprPtr &A : cast<CallExpr>(E)->getArgs())
        scanExpr(A.get(), Node);
      break;
    default:
      break;
    }
  }

  void walk(const StmtList &List) {
    for (const StmtPtr &SP : List) {
      const Stmt *S = SP.get();
      switch (S->getKind()) {
      case Stmt::Kind::Assign: {
        const auto *A = cast<AssignStmt>(S);
        NodeId Node = StmtNode.at(S);
        scanExpr(A->getRHS(), Node);
        if (const auto *LHS = dyn_cast<ArrayRefExpr>(A->getLHS())) {
          scanExpr(LHS->getSubscript(), Node);
          Kills[Node].insert(LHS->getArray());
        } else if (const auto *V = dyn_cast<VarExpr>(A->getLHS())) {
          Kills[Node].insert(V->getName());
        }
        break;
      }
      case Stmt::Kind::Do: {
        const auto *D = cast<DoStmt>(S);
        NodeId H = HeaderNode.at(S);
        scanExpr(D->getLo(), H);
        scanExpr(D->getHi(), H);
        // The index is rebound every iteration and on loop entry/exit.
        auto &KillSites = LoopKillNodes[D->getIndexVar()];
        KillSites.push_back(H);
        auto LIt = LatchNode.find(S);
        if (LIt != LatchNode.end())
          KillSites.push_back(LIt->second);
        walk(D->getBody());
        break;
      }
      case Stmt::Kind::If: {
        const auto *If = cast<IfStmt>(S);
        scanExpr(If->getCond(), StmtNode.at(S));
        walk(If->getThen());
        walk(If->getElse());
        break;
      }
      case Stmt::Kind::Goto:
      case Stmt::Kind::Continue:
        break;
      }
    }
  }

  const Program &P;
  const Cfg &G;
  ExprPreResult &R;
  std::map<const Stmt *, NodeId> StmtNode, HeaderNode, LatchNode;
  std::map<std::string, unsigned> ByKey;
  std::vector<Deps> ItemDeps;
  std::map<NodeId, std::vector<unsigned>> Takes;
  std::map<NodeId, std::set<std::string>> Kills;
  std::map<std::string, std::vector<NodeId>> LoopKillNodes;
};

} // namespace

GntProblem gnt::buildExprPreProblem(const Program &P, const Cfg &G,
                                    std::vector<std::string> &ExprNames) {
  ExprPreResult R;
  PreAnalyzer A(P, G, R);
  GntProblem Prob = A.buildProblem();
  ExprNames = std::move(R.Exprs);
  return Prob;
}

ExprPreResult gnt::runExprPre(const Program &P, const Cfg &G,
                              const IntervalFlowGraph &Ifg,
                              unsigned SolverShards, bool CompressUniverse,
                              GntIncrementalContext *Inc) {
  ExprPreResult R;
  PreAnalyzer A(P, G, R);
  R.Problem = A.buildProblem();
  R.Run = Inc ? runGiveNTakeIncremental(Ifg, R.Problem, SolverShards,
                                        CompressUniverse, Inc->Pre,
                                        Inc->Stats)
              : runGiveNTake(Ifg, R.Problem, SolverShards, CompressUniverse);

  // LAZY placements are the classical PRE insertions; an insertion that
  // coincides with an occurrence stays an ordinary evaluation whose
  // result is kept in the temporary.
  for (NodeId Node = 0; Node != G.size(); ++Node) {
    const CfgNode &CN = G.node(Node);
    const BitVector &In = R.Run.resAtEntry(Urgency::Lazy, Node);
    const BitVector &Out = R.Run.resAtExit(Urgency::Lazy, Node);
    for (unsigned I : In)
      R.Insertions.push_back({I, CN.EmitStmt, CN.Where});
    for (unsigned I : Out)
      R.Insertions.push_back(
          {I, CN.EmitStmt,
           CN.Where == EmitWhere::Before ? EmitWhere::After : CN.Where});
    // Occurrences covered by an upstream temporary become redundant.
    BitVector Covered = R.Problem.TakeInit[Node];
    Covered &= R.Run.Result.Lazy.GivenIn[Node];
    for (unsigned I : Covered)
      R.Redundant.push_back({Node, I});
  }
  return R;
}

std::string ExprPreResult::annotate(const Program &P) const {
  std::map<std::pair<const Stmt *, EmitWhere>, std::vector<std::string>>
      Lines;
  for (const PreInsertion &Ins : Insertions)
    Lines[{Ins.S, Ins.Where}].push_back("t" + itostr(Ins.Item) + " = " +
                                        Exprs[Ins.Item]);
  AstPrinter Printer([&Lines](const Stmt *S, EmitWhere W) {
    auto It = Lines.find({S, W});
    return It == Lines.end() ? std::vector<std::string>() : It->second;
  });
  return Printer.print(P);
}

GntVerifyResult ExprPreResult::verify() const {
  return verifyGntRun(Run, Exprs);
}
