//===- pre/ExprPre.h - Classical PRE on GIVE-N-TAKE -------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Sections 1 and 6 claim GIVE-N-TAKE subsumes classical PRE
/// ("a LAZY, BEFORE problem"): common subexpression elimination and loop
/// invariant code motion fall out of the same equations that place
/// communication. This client demonstrates it:
///
///  - items are lexical arithmetic expressions (e.g. `2 * i + c`);
///  - evaluating an expression *consumes* its item;
///  - assigning to an operand *steals* every item mentioning it; a loop
///    kills index-dependent items once per iteration (at its latch) and
///    at its boundary (at its header);
///  - nothing comes for free (GIVE_init is empty) — exactly classical PRE.
///
/// The LAZY solution gives the classical placement; unlike LCM it hoists
/// invariant expressions out of potentially zero-trip DO loops
/// (speculation the paper allows for exception-free computations, so
/// division is never a candidate). The EAGER solution is a speculative
/// "earliest" placement useful for long-latency operations.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_PRE_EXPRPRE_H
#define GNT_PRE_EXPRPRE_H

#include "cfg/Cfg.h"
#include "dataflow/GiveNTake.h"
#include "dataflow/Incremental.h"
#include "dataflow/Verifier.h"

#include <map>
#include <string>
#include <vector>

namespace gnt {

/// One placed temporary computation.
struct PreInsertion {
  unsigned Item;          ///< Expression item id.
  const Stmt *S;          ///< Anchor statement.
  EmitWhere Where;        ///< Anchor position.
};

/// Outcome of expression PRE.
struct ExprPreResult {
  /// Canonical text of each expression item.
  std::vector<std::string> Exprs;

  /// Computations to insert (`t<item> = <expr>`), LAZY placement.
  std::vector<PreInsertion> Insertions;

  /// Original occurrences that become uses of the temporary: (node,
  /// item). Occurrences that are themselves insertion points are not
  /// listed.
  std::vector<std::pair<NodeId, unsigned>> Redundant;

  /// Number of static evaluation sites per item before PRE.
  std::vector<unsigned> Occurrences;

  /// The underlying framework run, for inspection and verification.
  GntRun Run;

  /// The problem fed to the framework.
  GntProblem Problem;

  /// Renders the program with `t<i> = expr` insertion lines.
  std::string annotate(const Program &P) const;

  /// Verifies the placement with the independent C1/C3/O1 checker.
  GntVerifyResult verify() const;
};

/// Runs expression PRE over \p P. \p SolverShards > 1 solves the
/// underlying GIVE-N-TAKE problem with the expression universe split
/// into that many word-aligned shards; \p CompressUniverse solves it
/// over expression equivalence classes. Both are strategy knobs: the
/// placement is byte-identical in every configuration (the invariance
/// contracts of dataflow/GiveNTake.h). \p Inc, when set, routes the
/// solve through runGiveNTakeIncremental with the context's Pre memo
/// slot (dataflow/Incremental.h) — same byte-identity contract.
ExprPreResult runExprPre(const Program &P, const Cfg &G,
                         const IntervalFlowGraph &Ifg,
                         unsigned SolverShards = 0,
                         bool CompressUniverse = false,
                         GntIncrementalContext *Inc = nullptr);

/// Builds the expression-PRE problem for \p P over \p G without solving
/// it: items are the maximal speculable expressions (canonical texts
/// returned through \p ExprNames), TAKE_init their evaluation sites,
/// STEAL_init the operand-assignment and loop-index kills, GIVE_init
/// empty. This is the `exprs` universe of the user-specified analysis
/// subsystem (analysis/SpecCompile.h); very-busy-expressions and
/// friends reuse exactly the item granularity PRE places temporaries
/// at.
GntProblem buildExprPreProblem(const Program &P, const Cfg &G,
                               std::vector<std::string> &ExprNames);

} // namespace gnt

#endif // GNT_PRE_EXPRPRE_H
