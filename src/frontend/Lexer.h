//===- frontend/Lexer.h - FMini lexer ---------------------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for FMini source. Statements are newline-terminated (Fortran
/// style); `!` starts a comment that runs to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_FRONTEND_LEXER_H
#define GNT_FRONTEND_LEXER_H

#include "ir/Ast.h"

#include <string>
#include <vector>

namespace gnt {

/// A single token.
struct Token {
  enum class Kind {
    Eof,
    Newline,
    Ident,
    Number,
    // Keywords.
    KwDo,
    KwEnddo,
    KwIf,
    KwThen,
    KwElse,
    KwEndif,
    KwGoto,
    KwContinue,
    KwDistribute,
    KwArray,
    // Punctuation and operators.
    LParen,
    RParen,
    Comma,
    Assign, // '='
    Plus,
    Minus,
    Star,
    Slash,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
  };

  Kind TheKind = Kind::Eof;
  std::string Text;     ///< Identifier spelling.
  long long Value = 0;  ///< Numeric value for Number tokens.
  SourceLoc Loc;
  bool AtLineStart = false; ///< True for the first token on its line.
};

/// Converts FMini source text into a token stream (terminated by Eof).
/// Lexical errors are reported as diagnostics appended to \p Errors.
std::vector<Token> lex(const std::string &Source,
                       std::vector<std::string> &Errors);

} // namespace gnt

#endif // GNT_FRONTEND_LEXER_H
