//===- frontend/Parser.h - FMini recursive descent parser ------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses FMini source into a Program. The grammar:
///
/// \code
///   program  := line*
///   line     := [LABEL] stmt NEWLINE
///   stmt     := 'distribute' ident (',' ident)*
///             | 'array' ident (',' ident)*
///             | 'do' ident '=' expr ',' expr NEWLINE line* 'enddo'
///             | 'if' '(' expr ')' 'then' NEWLINE line*
///                   ['else' NEWLINE line*] 'endif'
///             | 'if' '(' expr ')' 'goto' NUMBER
///             | 'goto' NUMBER
///             | 'continue'
///             | lvalue '=' expr
/// \endcode
///
/// Names become ArrayRefExpr when declared via `array`/`distribute` or
/// first used subscripted on an assignment left-hand side; undeclared
/// parenthesized names in expressions are opaque intrinsic calls (e.g.
/// `test(i)` in the paper's Figure 11).
///
//===----------------------------------------------------------------------===//

#ifndef GNT_FRONTEND_PARSER_H
#define GNT_FRONTEND_PARSER_H

#include "ir/Ast.h"

#include <string>
#include <vector>

namespace gnt {

/// Result of a parse: the program plus any diagnostics.
struct ParseResult {
  Program Prog;
  std::vector<std::string> Errors;

  bool success() const { return Errors.empty(); }
};

/// Parses FMini \p Source.
ParseResult parseProgram(const std::string &Source);

} // namespace gnt

#endif // GNT_FRONTEND_PARSER_H
