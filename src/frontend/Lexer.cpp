//===- frontend/Lexer.cpp - FMini lexer ------------------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/Support.h"

#include <cctype>

using namespace gnt;

static Token::Kind keywordKind(const std::string &S) {
  if (S == "do")
    return Token::Kind::KwDo;
  if (S == "enddo")
    return Token::Kind::KwEnddo;
  if (S == "if")
    return Token::Kind::KwIf;
  if (S == "then")
    return Token::Kind::KwThen;
  if (S == "else")
    return Token::Kind::KwElse;
  if (S == "endif")
    return Token::Kind::KwEndif;
  if (S == "goto")
    return Token::Kind::KwGoto;
  if (S == "continue")
    return Token::Kind::KwContinue;
  if (S == "distribute")
    return Token::Kind::KwDistribute;
  if (S == "array")
    return Token::Kind::KwArray;
  return Token::Kind::Ident;
}

std::vector<Token> gnt::lex(const std::string &Source,
                            std::vector<std::string> &Errors) {
  std::vector<Token> Toks;
  unsigned Line = 1, Col = 1;
  bool LineStart = true;
  size_t I = 0, E = Source.size();

  auto push = [&](Token::Kind K, unsigned TokCol) {
    Token T;
    T.TheKind = K;
    T.Loc = {Line, TokCol};
    T.AtLineStart = LineStart;
    LineStart = false;
    Toks.push_back(T);
    return &Toks.back();
  };

  while (I < E) {
    char C = Source[I];
    unsigned TokCol = Col;

    if (C == '\n') {
      // Collapse runs of blank lines into a single Newline token.
      if (!Toks.empty() && Toks.back().TheKind != Token::Kind::Newline)
        push(Token::Kind::Newline, TokCol);
      ++I;
      ++Line;
      Col = 1;
      LineStart = true;
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r') {
      ++I;
      ++Col;
      continue;
    }
    if (C == '!') {
      while (I < E && Source[I] != '\n')
        ++I;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      long long V = 0;
      size_t Start = I;
      while (I < E && std::isdigit(static_cast<unsigned char>(Source[I]))) {
        V = V * 10 + (Source[I] - '0');
        ++I;
      }
      Col += static_cast<unsigned>(I - Start);
      push(Token::Kind::Number, TokCol)->Value = V;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < E && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        ++I;
      std::string Text = Source.substr(Start, I - Start);
      Col += static_cast<unsigned>(I - Start);
      Token *T = push(keywordKind(Text), TokCol);
      T->Text = Text;
      continue;
    }

    auto twoChar = [&](char Next, Token::Kind K2, Token::Kind K1) {
      if (I + 1 < E && Source[I + 1] == Next) {
        push(K2, TokCol);
        I += 2;
        Col += 2;
      } else {
        push(K1, TokCol);
        ++I;
        ++Col;
      }
    };

    switch (C) {
    case '(':
      push(Token::Kind::LParen, TokCol);
      ++I;
      ++Col;
      break;
    case ')':
      push(Token::Kind::RParen, TokCol);
      ++I;
      ++Col;
      break;
    case ',':
      push(Token::Kind::Comma, TokCol);
      ++I;
      ++Col;
      break;
    case '+':
      push(Token::Kind::Plus, TokCol);
      ++I;
      ++Col;
      break;
    case '-':
      push(Token::Kind::Minus, TokCol);
      ++I;
      ++Col;
      break;
    case '*':
      push(Token::Kind::Star, TokCol);
      ++I;
      ++Col;
      break;
    case '/':
      // Fortran-style `/=` is "not equal"; a bare `/` is division.
      twoChar('=', Token::Kind::Ne, Token::Kind::Slash);
      break;
    case '<':
      twoChar('=', Token::Kind::Le, Token::Kind::Lt);
      break;
    case '>':
      twoChar('=', Token::Kind::Ge, Token::Kind::Gt);
      break;
    case '=':
      twoChar('=', Token::Kind::EqEq, Token::Kind::Assign);
      break;
    default:
      Errors.push_back("line " + itostr(Line) + ": unexpected character '" +
                       std::string(1, C) + "'");
      ++I;
      ++Col;
      break;
    }
  }

  if (!Toks.empty() && Toks.back().TheKind != Token::Kind::Newline) {
    Token T;
    T.TheKind = Token::Kind::Newline;
    T.Loc = {Line, Col};
    Toks.push_back(T);
  }
  Token Eof;
  Eof.TheKind = Token::Kind::Eof;
  Eof.Loc = {Line, Col};
  Toks.push_back(Eof);
  return Toks;
}
