//===- frontend/Parser.cpp - FMini recursive descent parser ----------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"
#include "support/Support.h"

#include <set>

using namespace gnt;

namespace {

class Parser {
public:
  Parser(std::vector<Token> Toks, ParseResult &Result)
      : Toks(std::move(Toks)), Result(Result) {}

  void run() {
    Result.Prog.getBody() = parseLines(/*Terminators=*/{});
    expect(Token::Kind::Eof, "end of input");
    resolveArrays();
  }

private:
  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(unsigned N = 1) const {
    return Toks[std::min(Pos + N, Toks.size() - 1)];
  }
  bool at(Token::Kind K) const { return cur().TheKind == K; }

  void advance() {
    if (!at(Token::Kind::Eof))
      ++Pos;
  }

  void error(const std::string &Msg) {
    Result.Errors.push_back("line " + itostr(cur().Loc.Line) + ": " + Msg);
  }

  bool expect(Token::Kind K, const char *What) {
    if (at(K)) {
      advance();
      return true;
    }
    error(std::string("expected ") + What);
    // Recover: skip to end of line.
    while (!at(Token::Kind::Newline) && !at(Token::Kind::Eof))
      advance();
    return false;
  }

  void expectNewline() {
    if (at(Token::Kind::Newline)) {
      advance();
      return;
    }
    if (at(Token::Kind::Eof))
      return;
    error("expected end of statement");
    while (!at(Token::Kind::Newline) && !at(Token::Kind::Eof))
      advance();
    if (at(Token::Kind::Newline))
      advance();
  }

  /// True if the current token starts one of \p Terminators.
  static bool isTerminator(Token::Kind K,
                           const std::set<Token::Kind> &Terminators) {
    return Terminators.count(K) != 0;
  }

  StmtList parseLines(const std::set<Token::Kind> &Terminators) {
    StmtList List;
    while (true) {
      while (at(Token::Kind::Newline))
        advance();
      if (at(Token::Kind::Eof) || isTerminator(cur().TheKind, Terminators))
        return List;

      unsigned Label = 0;
      if (at(Token::Kind::Number) && cur().AtLineStart) {
        Label = static_cast<unsigned>(cur().Value);
        advance();
      }

      if (at(Token::Kind::KwDistribute) || at(Token::Kind::KwArray)) {
        bool Distributed = at(Token::Kind::KwDistribute);
        advance();
        parseDecl(Distributed);
        expectNewline();
        continue;
      }

      StmtPtr S = parseStmt();
      if (!S) {
        // Error recovery: resynchronize at the next line.
        while (!at(Token::Kind::Newline) && !at(Token::Kind::Eof))
          advance();
        expectNewline();
        continue;
      }
      if (Label)
        S->setLabel(Label);
      List.push_back(std::move(S));
      expectNewline();
    }
  }

  void parseDecl(bool Distributed) {
    while (true) {
      if (!at(Token::Kind::Ident)) {
        error("expected array name in declaration");
        return;
      }
      Result.Prog.declareArray(cur().Text, Distributed);
      advance();
      if (!at(Token::Kind::Comma))
        return;
      advance();
    }
  }

  StmtPtr parseStmt() {
    SourceLoc Loc = cur().Loc;
    switch (cur().TheKind) {
    case Token::Kind::KwDo:
      return parseDo(Loc);
    case Token::Kind::KwIf:
      return parseIf(Loc);
    case Token::Kind::KwGoto: {
      advance();
      if (!at(Token::Kind::Number)) {
        error("expected label after goto");
        return nullptr;
      }
      unsigned Target = static_cast<unsigned>(cur().Value);
      advance();
      return std::make_unique<GotoStmt>(Target, Loc);
    }
    case Token::Kind::KwContinue:
      advance();
      return std::make_unique<ContinueStmt>(Loc);
    case Token::Kind::Ident:
      return parseAssign(Loc);
    default:
      error("expected statement");
      return nullptr;
    }
  }

  StmtPtr parseDo(SourceLoc Loc) {
    advance(); // do
    if (!at(Token::Kind::Ident)) {
      error("expected loop index variable");
      return nullptr;
    }
    std::string Idx = cur().Text;
    advance();
    if (!expect(Token::Kind::Assign, "'='"))
      return nullptr;
    ExprPtr Lo = parseExpr();
    if (!expect(Token::Kind::Comma, "','"))
      return nullptr;
    ExprPtr Hi = parseExpr();
    expectNewline();
    StmtList Body = parseLines({Token::Kind::KwEnddo});
    expect(Token::Kind::KwEnddo, "'enddo'");
    if (!Lo || !Hi)
      return nullptr;
    return std::make_unique<DoStmt>(Idx, std::move(Lo), std::move(Hi),
                                    std::move(Body), Loc);
  }

  StmtPtr parseIf(SourceLoc Loc) {
    advance(); // if
    if (!expect(Token::Kind::LParen, "'('"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!expect(Token::Kind::RParen, "')'"))
      return nullptr;
    if (at(Token::Kind::KwGoto)) {
      advance();
      if (!at(Token::Kind::Number)) {
        error("expected label after goto");
        return nullptr;
      }
      unsigned Target = static_cast<unsigned>(cur().Value);
      advance();
      StmtList Then;
      Then.push_back(std::make_unique<GotoStmt>(Target, Loc));
      return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                      StmtList(), Loc);
    }
    if (!expect(Token::Kind::KwThen, "'then' or 'goto'"))
      return nullptr;
    expectNewline();
    StmtList Then =
        parseLines({Token::Kind::KwElse, Token::Kind::KwEndif});
    StmtList Else;
    if (at(Token::Kind::KwElse)) {
      advance();
      expectNewline();
      Else = parseLines({Token::Kind::KwEndif});
    }
    expect(Token::Kind::KwEndif, "'endif'");
    if (!Cond)
      return nullptr;
    return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                    std::move(Else), Loc);
  }

  StmtPtr parseAssign(SourceLoc Loc) {
    std::string Name = cur().Text;
    advance();
    ExprPtr LHS;
    if (at(Token::Kind::LParen)) {
      advance();
      ExprPtr Sub = parseExpr();
      if (!expect(Token::Kind::RParen, "')'"))
        return nullptr;
      if (!Sub)
        return nullptr;
      LHS = std::make_unique<ArrayRefExpr>(Name, std::move(Sub), Loc);
      LhsArrays.insert(Name);
    } else {
      LHS = std::make_unique<VarExpr>(Name, Loc);
    }
    if (!expect(Token::Kind::Assign, "'='"))
      return nullptr;
    ExprPtr RHS = parseExpr();
    if (!RHS)
      return nullptr;
    return std::make_unique<AssignStmt>(std::move(LHS), std::move(RHS), Loc);
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  ExprPtr parseExpr() { return parseCompare(); }

  ExprPtr parseCompare() {
    ExprPtr L = parseAdditive();
    if (!L)
      return nullptr;
    BinaryExpr::Op Op;
    switch (cur().TheKind) {
    case Token::Kind::Lt:
      Op = BinaryExpr::Op::Lt;
      break;
    case Token::Kind::Le:
      Op = BinaryExpr::Op::Le;
      break;
    case Token::Kind::Gt:
      Op = BinaryExpr::Op::Gt;
      break;
    case Token::Kind::Ge:
      Op = BinaryExpr::Op::Ge;
      break;
    case Token::Kind::EqEq:
      Op = BinaryExpr::Op::Eq;
      break;
    case Token::Kind::Ne:
      Op = BinaryExpr::Op::Ne;
      break;
    default:
      return L;
    }
    SourceLoc Loc = cur().Loc;
    advance();
    ExprPtr R = parseAdditive();
    if (!R)
      return nullptr;
    return std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R), Loc);
  }

  ExprPtr parseAdditive() {
    ExprPtr L = parseMultiplicative();
    while (L && (at(Token::Kind::Plus) || at(Token::Kind::Minus))) {
      BinaryExpr::Op Op = at(Token::Kind::Plus) ? BinaryExpr::Op::Add
                                                : BinaryExpr::Op::Sub;
      SourceLoc Loc = cur().Loc;
      advance();
      ExprPtr R = parseMultiplicative();
      if (!R)
        return nullptr;
      L = std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R), Loc);
    }
    return L;
  }

  ExprPtr parseMultiplicative() {
    ExprPtr L = parseUnary();
    while (L && (at(Token::Kind::Star) || at(Token::Kind::Slash))) {
      BinaryExpr::Op Op = at(Token::Kind::Star) ? BinaryExpr::Op::Mul
                                                : BinaryExpr::Op::Div;
      SourceLoc Loc = cur().Loc;
      advance();
      ExprPtr R = parseUnary();
      if (!R)
        return nullptr;
      L = std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R), Loc);
    }
    return L;
  }

  ExprPtr parseUnary() {
    if (at(Token::Kind::Minus)) {
      SourceLoc Loc = cur().Loc;
      advance();
      ExprPtr Operand = parseUnary();
      if (!Operand)
        return nullptr;
      return std::make_unique<UnaryExpr>(std::move(Operand), Loc);
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    SourceLoc Loc = cur().Loc;
    if (at(Token::Kind::Number)) {
      long long V = cur().Value;
      advance();
      return std::make_unique<IntLitExpr>(V, Loc);
    }
    if (at(Token::Kind::LParen)) {
      advance();
      ExprPtr E = parseExpr();
      if (!expect(Token::Kind::RParen, "')'"))
        return nullptr;
      return E;
    }
    if (at(Token::Kind::Ident)) {
      std::string Name = cur().Text;
      advance();
      if (!at(Token::Kind::LParen))
        return std::make_unique<VarExpr>(Name, Loc);
      advance();
      std::vector<ExprPtr> Args;
      if (!at(Token::Kind::RParen)) {
        while (true) {
          ExprPtr A = parseExpr();
          if (!A)
            return nullptr;
          Args.push_back(std::move(A));
          if (!at(Token::Kind::Comma))
            break;
          advance();
        }
      }
      if (!expect(Token::Kind::RParen, "')'"))
        return nullptr;
      // One-argument applications of names are resolved to array
      // references or intrinsic calls after the whole program is seen;
      // record a call for now and rewrite in resolveArrays().
      return std::make_unique<CallExpr>(Name, std::move(Args), Loc);
    }
    error("expected expression");
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Post-pass: resolve name(expr) between array refs and calls.
  //===--------------------------------------------------------------------===//

  /// Rewrites CallExpr nodes whose callee is a declared array (or a name
  /// subscripted on some assignment LHS) into ArrayRefExpr nodes.
  void resolveArrays() {
    for (const std::string &Name : LhsArrays)
      Result.Prog.declareArray(Name, /*Distributed=*/false);
    rewriteStmts(Result.Prog.getBody());
  }

  bool isArrayName(const std::string &Name) const {
    return Result.Prog.getArrays().count(Name) != 0;
  }

  void rewriteExpr(ExprPtr &E) {
    if (!E)
      return;
    switch (E->getKind()) {
    case Expr::Kind::IntLit:
    case Expr::Kind::Var:
      return;
    case Expr::Kind::ArrayRef:
      rewriteExpr(static_cast<ArrayRefExpr *>(E.get())->getSubscriptPtr());
      return;
    case Expr::Kind::Unary:
      rewriteExpr(static_cast<UnaryExpr *>(E.get())->getOperandPtr());
      return;
    case Expr::Kind::Binary: {
      auto *B = static_cast<BinaryExpr *>(E.get());
      rewriteExpr(B->getLHSPtr());
      rewriteExpr(B->getRHSPtr());
      return;
    }
    case Expr::Kind::Call: {
      auto *C = static_cast<CallExpr *>(E.get());
      for (ExprPtr &A : C->getArgsRef())
        rewriteExpr(A);
      if (!isArrayName(C->getCallee()))
        return;
      // A declared array used with a subscript list: FMini arrays are
      // one-dimensional; anything else must be rejected rather than
      // silently treated as an opaque call (which would drop the
      // reference from the communication analysis).
      if (C->getArgsRef().size() != 1) {
        error("line " + itostr(E->getLoc().Line) + ": array '" +
              C->getCallee() + "' used with " +
              itostr(static_cast<long long>(C->getArgsRef().size())) +
              " subscripts; FMini arrays are one-dimensional");
        return;
      }
      E = std::make_unique<ArrayRefExpr>(C->getCallee(),
                                         std::move(C->getArgsRef().front()),
                                         E->getLoc());
      return;
    }
    }
  }

  void rewriteStmts(StmtList &List) {
    for (StmtPtr &S : List) {
      switch (S->getKind()) {
      case Stmt::Kind::Assign: {
        auto *A = static_cast<AssignStmt *>(S.get());
        rewriteExpr(A->getLHSPtr());
        rewriteExpr(A->getRHSPtr());
        break;
      }
      case Stmt::Kind::Do: {
        auto *D = static_cast<DoStmt *>(S.get());
        rewriteExpr(D->getLoPtr());
        rewriteExpr(D->getHiPtr());
        rewriteStmts(D->getBodyRef());
        break;
      }
      case Stmt::Kind::If: {
        auto *If = static_cast<IfStmt *>(S.get());
        rewriteExpr(If->getCondPtr());
        rewriteStmts(If->getThenRef());
        rewriteStmts(If->getElseRef());
        break;
      }
      case Stmt::Kind::Goto:
      case Stmt::Kind::Continue:
        break;
      }
    }
  }

  std::vector<Token> Toks;
  size_t Pos = 0;
  ParseResult &Result;
  std::set<std::string> LhsArrays;
};

} // namespace

ParseResult gnt::parseProgram(const std::string &Source) {
  ParseResult Result;
  std::vector<Token> Toks = lex(Source, Result.Errors);
  Parser P(std::move(Toks), Result);
  P.run();
  return Result;
}
