//===- comm/Items.h - Dataflow universe of array sections -------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The communication problem's dataflow universe: value-numbered array
/// sections. An item is a distributed array together with a canonical
/// regular section, e.g. `x(11:n+10)`, or a one-level indirect section,
/// e.g. `x(a(1:n))`. References that canonicalize to the same key share
/// one item — this is how `x(a(k))` for k=1..N and `x(a(l))` for l=1..N
/// are "recognized as identical based on the subscript value numbers"
/// (paper, Figure 2 caption).
///
/// Subscripts that depend on a mutated scalar cannot be value-numbered
/// soundly; such references get *volatile* items, unique per occurrence
/// and stolen whenever the scalar is reassigned.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_COMM_ITEMS_H
#define GNT_COMM_ITEMS_H

#include "ir/Affine.h"

#include <cassert>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace gnt {

/// One element of the communication dataflow universe.
struct Item {
  /// The distributed array being communicated.
  std::string Array;

  /// Canonical printable form, e.g. "x(11:n+10)" or "x(a(1:n))"; the
  /// value number — items are deduplicated by this key.
  std::string Key;

  /// Direct section of Array, or the section of the *indirection* array
  /// for indirect items.
  Section Sec;

  /// For x(a(1:n)): "a". Empty for direct items.
  std::string IndirectArray;

  /// True if the subscript depends on a mutated scalar: the item is
  /// unique per occurrence and never shared.
  bool Volatile = false;

  /// '+' or '*' when every definition of this item is a reduction with
  /// that operator; 0 otherwise. Reduction write-backs combine at the
  /// owner instead of overwriting (paper Section 6).
  char ReductionOp = 0;

  /// Scalar symbols the section bounds depend on (used to steal the item
  /// when one of them is reassigned).
  std::vector<std::string> DependsOn;

  bool isIndirect() const { return !IndirectArray.empty(); }

  /// Number of array elements this item covers, under the given
  /// parameter bindings; falls back to \p DefaultSize when the bounds are
  /// not evaluable.
  long long size(const std::map<std::string, long long> &Params,
                 long long DefaultSize) const;

  /// Conservative overlap: true unless the two items provably touch
  /// disjoint data.
  bool mayOverlap(const Item &RHS) const;
};

/// Interns items; ids index the GIVE-N-TAKE bit vectors.
class ItemTable {
public:
  /// Returns the id for \p I, reusing an existing id when a non-volatile
  /// item with the same key exists.
  unsigned intern(Item I);

  unsigned size() const { return static_cast<unsigned>(Items.size()); }

  const Item &item(unsigned Id) const {
    assert(Id < Items.size() && "bad item id");
    return Items[Id];
  }

  /// Item keys, for diagnostics and the verifier.
  std::vector<std::string> names() const;

  /// Id of the non-volatile item with key \p Key, or -1.
  int lookup(const std::string &Key) const;

  /// Records the kind of a definition of item \p Id: \p ReduceOp is '+'
  /// or '*' for reductions, 0 for plain stores. The item keeps a
  /// reduction operator only while *every* definition agrees on it.
  void noteDefinitionKind(unsigned Id, char ReduceOp);

private:
  std::vector<Item> Items;
  std::map<std::string, unsigned> ByKey;
  std::set<unsigned> SeenDef;
};

} // namespace gnt

#endif // GNT_COMM_ITEMS_H
