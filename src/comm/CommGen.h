//===- comm/CommGen.h - Communication generation ----------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 2/3.1 application: generating READ and WRITE
/// communication for FMini programs over distributed arrays.
///
///  - READs are a BEFORE problem: references consume, local definitions
///    produce "for free" (non-owner-computes), overlapping definitions
///    steal. Read_Send is the EAGER solution, Read_Recv the LAZY one.
///  - WRITEs are an AFTER problem: definitions consume (they create data
///    that must flow back to the owners); references to overlapping data
///    steal (the write-back must precede them). Write_Send is the LAZY
///    solution, Write_Recv the EAGER one.
///
/// The resulting productions are anchored to source positions and can be
/// printed as an annotated program in the style of Figures 2, 3 and 14.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_COMM_COMMGEN_H
#define GNT_COMM_COMMGEN_H

#include "comm/RefAnalysis.h"
#include "dataflow/GiveNTake.h"
#include "dataflow/Incremental.h"
#include "dataflow/Verifier.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gnt {

/// Knobs for communication generation.
struct CommOptions {
  /// Owner-computes rule: definitions of distributed data happen at the
  /// owners, so they neither produce reads "for free" nor require WRITEs
  /// (they still steal cached copies).
  bool OwnerComputes = false;

  /// Hoist communication out of potentially zero-trip loops (the paper's
  /// default; Section 2 argues slight over-communication is acceptable).
  bool HoistZeroTrip = true;

  /// Atomic placement: one combined READ/WRITE operation at the LAZY
  /// point (e.g. for a library call), instead of split send/receive.
  bool Atomic = false;

  /// Generate the READ (Before) problem.
  bool GenerateReads = true;

  /// Generate the WRITE (After) problem.
  bool GenerateWrites = true;
};

/// One generated communication operation.
enum class CommOpKind {
  ReadSend,
  ReadRecv,
  WriteSend,
  WriteRecv,
  AtomicRead,
  AtomicWrite,
};

const char *commOpName(CommOpKind K);

struct CommOp {
  CommOpKind Kind;
  unsigned Item;
};

/// Source anchor for generated operations.
struct AnchorKey {
  const Stmt *S = nullptr;
  EmitWhere Where = EmitWhere::Before;

  bool operator<(const AnchorKey &RHS) const {
    if (S != RHS.S)
      return S < RHS.S;
    return Where < RHS.Where;
  }
};

/// The full communication plan for a program.
struct CommPlan {
  CommOptions Opts;
  RefAnalysisResult Refs;

  /// True for plans whose messages carry single elements (the naive
  /// baseline communicates per reference execution); GIVE-N-TAKE plans
  /// move whole sections.
  bool ElementMessages = false;

  /// Forward-orientation problem inputs (also consumed by the simulator
  /// for per-node steal/give/take events).
  GntProblem ReadProblem;
  GntProblem WriteProblem;

  /// Solver runs (present when the respective problem was generated).
  std::optional<GntRun> ReadRun;
  std::optional<GntRun> WriteRun;

  /// Generated operations by source anchor, in emission order.
  std::map<AnchorKey, std::vector<CommOp>> Anchored;

  /// Renders the annotated program (Figures 2/3/14 style).
  std::string annotate(const Program &P) const;

  /// Static placement counts per operation kind.
  std::map<CommOpKind, unsigned> staticCounts() const;

  /// Runs the independent C1/C3/O1 verifier on both solver runs.
  GntVerifyResult verify() const;
};

/// Analyzes \p P and computes the full communication plan. \p G and
/// \p Ifg must come from buildCfg / IntervalFlowGraph::build on \p P.
/// \p SolverShards > 1 solves each GIVE-N-TAKE problem with its item
/// universe split into that many word-aligned shards;
/// \p CompressUniverse solves over item equivalence classes instead of
/// the full universe. By the invariance contracts (see
/// dataflow/GiveNTake.h) the plan is byte-identical for every
/// combination of the two knobs. \p Inc, when set, routes the READ and
/// WRITE solves through runGiveNTakeIncremental with the context's
/// Read/Write memo slots (dataflow/Incremental.h) — a third strategy
/// knob with the same byte-identity contract.
CommPlan generateComm(const Program &P, const Cfg &G,
                      const IntervalFlowGraph &Ifg,
                      const CommOptions &Opts = {},
                      unsigned SolverShards = 0,
                      bool CompressUniverse = false,
                      GntIncrementalContext *Inc = nullptr);

/// Builds the READ (Before) and WRITE (After) problem inputs from the
/// reference analysis. Shared with the baseline generators, which reuse
/// the same per-node reference events.
void buildCommProblems(const RefAnalysisResult &Refs, const Cfg &G,
                       const IntervalFlowGraph &Ifg, const CommOptions &Opts,
                       GntProblem &Read, GntProblem &Write);

/// Emits one solver run's productions into \p Plan.Anchored: nodes in
/// preorder, sends before receives, branch-node exit production
/// duplicated onto both arm entries. \p SendUrg selects which urgency is
/// the send (EAGER for READ phases, LAZY for WRITE phases); \p Atomic
/// emits the fused LAZY-only operation instead. Shared between
/// generateComm and the strategy planners (comm/Strategy.h), which must
/// anchor byte-identically.
void emitCommPhase(CommPlan &Plan, const Cfg &G, const IntervalFlowGraph &Ifg,
                   const GntRun &Run, Urgency SendUrg, CommOpKind SendKind,
                   CommOpKind RecvKind, CommOpKind AtomicKind, bool Atomic);

} // namespace gnt

#endif // GNT_COMM_COMMGEN_H
