//===- comm/Strategy.h - Placement strategy zoo -----------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// First-class placement strategies over the same interval dataflow
/// (DESIGN.md §15). The framework's default placement is the paper's
/// *balanced* discipline; this header adds two competitors and the
/// machinery they share:
///
///  - `speculative`: profile-guided placement. Consumes per-statement
///    execution frequencies (an ExecProfile, producible by the trace
///    simulator or supplied by the user in the gnt-profile-v1 text
///    format) and *augments* the READ problem: at every branch whose
///    profile bias meets the threshold, the takes of the likely arm are
///    duplicated onto the branch node itself, letting the solver hoist
///    their production past the branch (and, transitively, out of
///    enclosing loops). The augmented plan is adopted only when its
///    expected dynamic message cost under the profile strictly beats
///    the balanced plan's — otherwise the balanced plan is returned
///    byte-identically. Trades the paper's C2 guarantee (no wasted
///    communication) for expected-cost wins; C1 and C3 still hold.
///
///  - `lospre`: a linear-time lospre-style formulation (after Krause)
///    solved by interval elimination (dataflow/Lospre.h). READs become
///    atomic operations at busy-code-motion EARLIEST points —
///    safety-first like the LCM baseline but solved in O(E) elimination
///    sweeps instead of iteration — while WRITEs keep the balanced
///    GIVE-N-TAKE write run.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_COMM_STRATEGY_H
#define GNT_COMM_STRATEGY_H

#include "comm/CommGen.h"

#include <map>
#include <string>
#include <utility>

namespace gnt {

/// The placement-strategy axis surfaced as PipelineOptions::Strategy,
/// `gntc --strategy=` and the gntd `strategy` request field.
enum class PlacementStrategy {
  Balanced,    ///< The paper's balanced placement (default).
  Speculative, ///< Profile-guided speculative hoisting past biased branches.
  Lospre,      ///< Linear-time lospre-style elimination placement.
};

/// Stable lowercase name ("balanced", "speculative", "lospre").
const char *placementStrategyName(PlacementStrategy S);

/// Parses a strategy name; returns false on unknown names.
bool parsePlacementStrategy(const std::string &Name, PlacementStrategy &Out);

/// Minimum branch bias (max of taken/not-taken probability) for a branch
/// to become a speculation candidate.
inline constexpr double SpeculativeBiasThreshold = 0.75;

/// An execution profile keyed by statement ordinal — the position of the
/// statement in a forEachStmt preorder walk of the program body, the
/// same numbering the trace simulator uses. Counts are doubles so
/// profiles can be scaled or merged.
struct ExecProfile {
  /// Executions per statement ordinal.
  std::map<unsigned, double> Stmt;
  /// Then/else arm executions per If-statement ordinal.
  std::map<unsigned, std::pair<double, double>> Branch;
  /// Total body iterations per Do-statement ordinal.
  std::map<unsigned, double> Loop;

  bool empty() const {
    return Stmt.empty() && Branch.empty() && Loop.empty();
  }
};

/// Renders \p Prof in the gnt-profile-v1 text format:
///
///   gnt-profile-v1
///   stmt <ordinal> <count>
///   branch <ordinal> <then-count> <else-count>
///   loop <ordinal> <iterations>
///
std::string renderExecProfile(const ExecProfile &Prof);

/// Parses the gnt-profile-v1 format. An empty (or whitespace-only) text
/// parses as the empty profile. Returns false and sets \p Error on
/// malformed input.
bool parseExecProfile(const std::string &Text, ExecProfile &Prof,
                      std::string &Error);

/// Per-anchor execution frequencies of \p P under \p Prof: Before/After
/// anchors fire once per statement execution, ThenEntry/ThenExit and
/// ElseEntry/ElseExit once per arm execution, BodyStart/BodyEnd once per
/// loop iteration. Anchors without profile data have frequency 0.
class AnchorFrequencies {
public:
  AnchorFrequencies(const Program &P, const ExecProfile &Prof);

  double at(const Stmt *S, EmitWhere W) const;

private:
  std::map<const Stmt *, double> StmtFreq, ThenFreq, ElseFreq, LoopFreq;
};

/// Expected dynamic message count of \p Plan under \p Prof: each
/// message-charging operation (Read_Recv, Write_Recv, atomic Read/Write)
/// weighted by its anchor's execution frequency. For jump-free programs
/// this equals the trace simulator's Messages count for any execution
/// whose trajectory produced \p Prof (communication operations never
/// influence control flow).
double expectedMessageCost(const Program &P, const CommPlan &Plan,
                           const ExecProfile &Prof);

/// Profile-guided speculative placement (see file comment). With an
/// empty profile, no candidate branches, or no expected-cost win, the
/// returned plan is byte-identical to generateComm's.
CommPlan generateSpeculativeComm(const Program &P, const Cfg &G,
                                 const IntervalFlowGraph &Ifg,
                                 const CommOptions &Opts,
                                 const ExecProfile &Prof,
                                 unsigned SolverShards = 0,
                                 bool CompressUniverse = false);

/// Lospre placement: atomic READs at busy-code-motion EARLIEST points
/// from the interval elimination solve, balanced GIVE-N-TAKE WRITEs.
CommPlan losprePlacement(const Program &P, const Cfg &G,
                         const IntervalFlowGraph &Ifg,
                         const CommOptions &Opts,
                         unsigned SolverShards = 0,
                         bool CompressUniverse = false);

/// Strategy dispatcher. \p Prof is consulted by Speculative only.
CommPlan generateStrategyComm(PlacementStrategy S, const Program &P,
                              const Cfg &G, const IntervalFlowGraph &Ifg,
                              const CommOptions &Opts,
                              const ExecProfile &Prof,
                              unsigned SolverShards = 0,
                              bool CompressUniverse = false);

} // namespace gnt

#endif // GNT_COMM_STRATEGY_H
