//===- comm/RefAnalysis.h - Reference analysis for communication -*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes, per CFG node, the distributed-array sections referenced and
/// defined, normalizing subscripts against the enclosing loop nest into
/// canonical sections (`x(k+10)` inside `do k = 1, n` becomes
/// `x(11:n+10)`). This is the reproduction's stand-in for the Fortran D
/// compiler's symbolic reference analysis; GIVE-N-TAKE itself only ever
/// sees the resulting TAKE/GIVE/STEAL_init bit vectors.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_COMM_REFANALYSIS_H
#define GNT_COMM_REFANALYSIS_H

#include "cfg/Cfg.h"
#include "comm/Items.h"

#include <map>
#include <vector>

namespace gnt {

/// References attributed to one CFG node.
struct NodeRefs {
  /// Items read at this node (operands needing a READ).
  std::vector<unsigned> Uses;
  /// Items of distributed arrays defined at this node (needing a WRITE
  /// under non-owner-computes).
  std::vector<unsigned> Defs;
  /// Parallel to Defs: 0 for a plain store, '+' or '*' for a reduction
  /// `a(s) = a(s) op ...` (the paper's Section 6 "WRITEs combined with
  /// different reduction operations"). Reduction definitions accumulate
  /// locally: the self-reference needs no READ and the definition gives
  /// nothing for free (the local partial value is not the global value).
  std::vector<char> DefOps;
};

/// A definition of any array (distributed or not), kept for steal
/// computation: writing an indirection array invalidates items subscripted
/// through it.
struct RawDef {
  std::string Array;
  Section Sec;
  bool Opaque = false;    ///< Unknown section: overlaps everything.
  bool Reduction = false; ///< Accumulation: nothing is given for free.
};

/// Result of the analysis.
struct RefAnalysisResult {
  ItemTable Items;
  std::vector<NodeRefs> PerNode;             ///< Indexed by NodeId.
  std::vector<std::vector<RawDef>> ArrayDefs; ///< All array defs per node.
  /// Scalars assigned somewhere, with the nodes assigning them.
  std::map<std::string, std::vector<NodeId>> ScalarAssigns;

  /// Maps statements to the node evaluating them (assigns and continues
  /// to their Stmt node, IFs to their Branch node, DOs to their header).
  std::map<const Stmt *, NodeId> StmtNode;
};

/// Analyzes \p P over its CFG \p G.
RefAnalysisResult analyzeReferences(const Program &P, const Cfg &G);

} // namespace gnt

#endif // GNT_COMM_REFANALYSIS_H
