//===- comm/Strategy.cpp - Placement strategy zoo ---------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "comm/Strategy.h"

#include "cfg/Dominators.h"
#include "dataflow/Lospre.h"

#include <cstdio>
#include <sstream>

using namespace gnt;

const char *gnt::placementStrategyName(PlacementStrategy S) {
  switch (S) {
  case PlacementStrategy::Balanced:
    return "balanced";
  case PlacementStrategy::Speculative:
    return "speculative";
  case PlacementStrategy::Lospre:
    return "lospre";
  }
  return "balanced";
}

bool gnt::parsePlacementStrategy(const std::string &Name,
                                 PlacementStrategy &Out) {
  if (Name == "balanced")
    Out = PlacementStrategy::Balanced;
  else if (Name == "speculative")
    Out = PlacementStrategy::Speculative;
  else if (Name == "lospre")
    Out = PlacementStrategy::Lospre;
  else
    return false;
  return true;
}

namespace {

/// Renders a count: integral values print without a fraction, anything
/// else with full round-trip precision.
std::string fmtCount(double V) {
  long long LL = static_cast<long long>(V);
  if (static_cast<double>(LL) == V && V > -1e15 && V < 1e15)
    return std::to_string(LL);
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

} // namespace

std::string gnt::renderExecProfile(const ExecProfile &Prof) {
  std::string R = "gnt-profile-v1\n";
  for (const auto &[Ord, Count] : Prof.Stmt)
    R += "stmt " + std::to_string(Ord) + " " + fmtCount(Count) + "\n";
  for (const auto &[Ord, Arms] : Prof.Branch)
    R += "branch " + std::to_string(Ord) + " " + fmtCount(Arms.first) +
         " " + fmtCount(Arms.second) + "\n";
  for (const auto &[Ord, Iters] : Prof.Loop)
    R += "loop " + std::to_string(Ord) + " " + fmtCount(Iters) + "\n";
  return R;
}

bool gnt::parseExecProfile(const std::string &Text, ExecProfile &Prof,
                           std::string &Error) {
  Prof = ExecProfile();
  std::istringstream In(Text);
  std::string Line;
  bool SawHeader = false;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    std::istringstream L(Line);
    std::string Tok;
    if (!(L >> Tok))
      continue; // Blank line.
    if (!SawHeader) {
      if (Tok != "gnt-profile-v1") {
        Error = "profile line " + std::to_string(LineNo) +
                ": expected gnt-profile-v1 header, got `" + Tok + "`";
        return false;
      }
      SawHeader = true;
      continue;
    }
    auto malformed = [&] {
      Error = "profile line " + std::to_string(LineNo) +
              ": malformed `" + Tok + "` entry";
      return false;
    };
    unsigned Ord = 0;
    if (Tok == "stmt") {
      double Count = 0;
      if (!(L >> Ord >> Count) || Count < 0)
        return malformed();
      Prof.Stmt[Ord] = Count;
    } else if (Tok == "branch") {
      double Then = 0, Else = 0;
      if (!(L >> Ord >> Then >> Else) || Then < 0 || Else < 0)
        return malformed();
      Prof.Branch[Ord] = {Then, Else};
    } else if (Tok == "loop") {
      double Iters = 0;
      if (!(L >> Ord >> Iters) || Iters < 0)
        return malformed();
      Prof.Loop[Ord] = Iters;
    } else {
      Error = "profile line " + std::to_string(LineNo) +
              ": unknown entry kind `" + Tok + "`";
      return false;
    }
  }
  Error.clear();
  return true;
}

AnchorFrequencies::AnchorFrequencies(const Program &P,
                                     const ExecProfile &Prof) {
  unsigned Ord = 0;
  forEachStmt(P.getBody(), [&](const Stmt *S) {
    unsigned O = Ord++;
    if (auto It = Prof.Stmt.find(O); It != Prof.Stmt.end())
      StmtFreq[S] = It->second;
    if (auto It = Prof.Branch.find(O); It != Prof.Branch.end()) {
      ThenFreq[S] = It->second.first;
      ElseFreq[S] = It->second.second;
    }
    if (auto It = Prof.Loop.find(O); It != Prof.Loop.end())
      LoopFreq[S] = It->second;
  });
}

double AnchorFrequencies::at(const Stmt *S, EmitWhere W) const {
  const std::map<const Stmt *, double> *M = nullptr;
  switch (W) {
  case EmitWhere::Before:
  case EmitWhere::After:
    M = &StmtFreq;
    break;
  case EmitWhere::ThenEntry:
  case EmitWhere::ThenExit:
    M = &ThenFreq;
    break;
  case EmitWhere::ElseEntry:
  case EmitWhere::ElseExit:
    M = &ElseFreq;
    break;
  case EmitWhere::BodyStart:
  case EmitWhere::BodyEnd:
    M = &LoopFreq;
    break;
  }
  auto It = M->find(S);
  return It == M->end() ? 0.0 : It->second;
}

double gnt::expectedMessageCost(const Program &P, const CommPlan &Plan,
                                const ExecProfile &Prof) {
  AnchorFrequencies Freq(P, Prof);
  double Cost = 0;
  for (const auto &[Key, Ops] : Plan.Anchored) {
    unsigned Charging = 0;
    for (const CommOp &Op : Ops)
      Charging += Op.Kind == CommOpKind::ReadRecv ||
                  Op.Kind == CommOpKind::WriteRecv ||
                  Op.Kind == CommOpKind::AtomicRead ||
                  Op.Kind == CommOpKind::AtomicWrite;
    if (Charging)
      Cost += Charging * Freq.at(Key.S, Key.Where);
  }
  return Cost;
}

CommPlan gnt::generateSpeculativeComm(const Program &P, const Cfg &G,
                                      const IntervalFlowGraph &Ifg,
                                      const CommOptions &Opts,
                                      const ExecProfile &Prof,
                                      unsigned SolverShards,
                                      bool CompressUniverse) {
  CommPlan Balanced =
      generateComm(P, G, Ifg, Opts, SolverShards, CompressUniverse);
  if (Prof.empty() || !Opts.GenerateReads || !Balanced.ReadRun)
    return Balanced;

  std::map<const Stmt *, unsigned> Ordinal;
  unsigned Ord = 0;
  forEachStmt(P.getBody(), [&](const Stmt *S) { Ordinal[S] = Ord++; });

  // Candidate selection: branches whose profile bias meets the
  // threshold promote the takes of every node their likely arm
  // dominates onto the branch node itself. The takes are *added*, never
  // moved — the originals keep C3 coverage on the unlikely path.
  Dominators Dom(G);
  const unsigned U = Balanced.ReadProblem.UniverseSize;
  GntProblem Aug = Balanced.ReadProblem;
  bool AnyCandidate = false;
  for (NodeId N = 0; N != G.size(); ++N) {
    const CfgNode &Node = G.node(N);
    if (Node.Kind != NodeKind::Branch || !Node.S)
      continue;
    auto OIt = Ordinal.find(Node.S);
    if (OIt == Ordinal.end())
      continue;
    auto BIt = Prof.Branch.find(OIt->second);
    if (BIt == Prof.Branch.end())
      continue;
    double Then = BIt->second.first, Else = BIt->second.second;
    double Total = Then + Else;
    if (Total <= 0)
      continue;
    double PThen = Then / Total;
    bool LikelyThen = PThen >= 0.5;
    if ((LikelyThen ? PThen : 1.0 - PThen) < SpeculativeBiasThreshold)
      continue;
    NodeId Arm = InvalidNode;
    if (LikelyThen)
      Arm = Node.ThenSucc;
    else
      for (NodeId S : Node.Succs)
        if (S != Node.ThenSucc)
          Arm = S;
    if (Arm == InvalidNode)
      continue;
    BitVector Promoted(U);
    for (NodeId M = 0; M != G.size(); ++M)
      if (Dom.dominates(Arm, M))
        Promoted |= Balanced.ReadProblem.TakeInit[M];
    Promoted.reset(Aug.TakeInit[N]);
    if (Promoted.none())
      continue;
    Aug.TakeInit[N] |= Promoted;
    AnyCandidate = true;
  }
  if (!AnyCandidate)
    return Balanced;

  // Re-solve the augmented READ problem. The plan's forward-orientation
  // ReadProblem stays the *original*: the simulator's per-node
  // reference events (and the plan's C3 obligations) are a property of
  // the program, not of the speculation; the augmented problem lives in
  // the run's OrientedProblem, which is what the auditor re-checks.
  GntRun SpecRun = runGiveNTake(Ifg, Aug, SolverShards, CompressUniverse);
  CommPlan Spec;
  Spec.Opts = Balanced.Opts;
  Spec.Refs = Balanced.Refs;
  Spec.ReadProblem = Balanced.ReadProblem;
  Spec.WriteProblem = Balanced.WriteProblem;
  Spec.WriteRun = Balanced.WriteRun;
  Spec.ReadRun = std::move(SpecRun);
  if (Spec.WriteRun)
    emitCommPhase(Spec, G, Ifg, *Spec.WriteRun, Urgency::Lazy,
                  CommOpKind::WriteSend, CommOpKind::WriteRecv,
                  CommOpKind::AtomicWrite, Opts.Atomic);
  emitCommPhase(Spec, G, Ifg, *Spec.ReadRun, Urgency::Eager,
                CommOpKind::ReadSend, CommOpKind::ReadRecv,
                CommOpKind::AtomicRead, Opts.Atomic);

  // Global gate: adopt the speculation only on a strict expected-cost
  // win under the supplied profile; otherwise the balanced plan is the
  // answer, byte-identically.
  if (expectedMessageCost(P, Spec, Prof) <
      expectedMessageCost(P, Balanced, Prof))
    return Spec;
  return Balanced;
}

CommPlan gnt::losprePlacement(const Program &P, const Cfg &G,
                              const IntervalFlowGraph &Ifg,
                              const CommOptions &Opts, unsigned SolverShards,
                              bool CompressUniverse) {
  CommPlan Plan;
  Plan.Opts = Opts;
  Plan.Refs = analyzeReferences(P, G);
  buildCommProblems(Plan.Refs, G, Ifg, Opts, Plan.ReadProblem,
                    Plan.WriteProblem);

  // WRITEs keep the balanced GIVE-N-TAKE discipline (lospre, like LCM,
  // is a READ placement formulation); the write phase is emitted first
  // so write-backs precede reads at shared anchors.
  if (Opts.GenerateWrites && !Opts.OwnerComputes) {
    Plan.WriteRun =
        runGiveNTake(Ifg, Plan.WriteProblem, SolverShards, CompressUniverse);
    emitCommPhase(Plan, G, Ifg, *Plan.WriteRun, Urgency::Lazy,
                  CommOpKind::WriteSend, CommOpKind::WriteRecv,
                  CommOpKind::AtomicWrite, Opts.Atomic);
  }

  // READs: atomic operations at the busy-code-motion EARLIEST points of
  // the elimination solve. Earliest insertions cover every occurrence,
  // so no per-occurrence reads are kept.
  if (Opts.GenerateReads) {
    LospreResult L = solveLospre(G, Ifg, Plan.ReadProblem);
    for (NodeId Id = 0; Id != G.size(); ++Id) {
      const CfgNode &Node = G.node(Id);
      if (!Node.EmitStmt)
        continue;
      auto add = [&](const AnchorKey &K, const BitVector &BV) {
        for (unsigned I : BV)
          Plan.Anchored[K].push_back({CommOpKind::AtomicRead, I});
      };
      add({Node.EmitStmt, Node.Where}, L.InsertAtEntry[Id]);
      EmitWhere ExitW = Node.Where == EmitWhere::Before ? EmitWhere::After
                                                        : Node.Where;
      add({Node.EmitStmt, ExitW}, L.InsertAtExit[Id]);
    }
  }
  return Plan;
}

CommPlan gnt::generateStrategyComm(PlacementStrategy S, const Program &P,
                                   const Cfg &G,
                                   const IntervalFlowGraph &Ifg,
                                   const CommOptions &Opts,
                                   const ExecProfile &Prof,
                                   unsigned SolverShards,
                                   bool CompressUniverse) {
  switch (S) {
  case PlacementStrategy::Balanced:
    return generateComm(P, G, Ifg, Opts, SolverShards, CompressUniverse);
  case PlacementStrategy::Speculative:
    return generateSpeculativeComm(P, G, Ifg, Opts, Prof, SolverShards,
                                   CompressUniverse);
  case PlacementStrategy::Lospre:
    return losprePlacement(P, G, Ifg, Opts, SolverShards, CompressUniverse);
  }
  return generateComm(P, G, Ifg, Opts, SolverShards, CompressUniverse);
}
