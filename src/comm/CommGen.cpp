//===- comm/CommGen.cpp - Communication generation ---------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "comm/CommGen.h"

#include "ir/AstPrinter.h"
#include "support/Support.h"

using namespace gnt;

const char *gnt::commOpName(CommOpKind K) {
  switch (K) {
  case CommOpKind::ReadSend:
    return "Read_Send";
  case CommOpKind::ReadRecv:
    return "Read_Recv";
  case CommOpKind::WriteSend:
    return "Write_Send";
  case CommOpKind::WriteRecv:
    return "Write_Recv";
  case CommOpKind::AtomicRead:
    return "Read";
  case CommOpKind::AtomicWrite:
    return "Write";
  }
  gntUnreachable("covered switch");
}

namespace {

/// Strips the per-occurrence suffix of volatile items for display.
std::string displayKey(const Item &I) {
  size_t Pos = I.Key.find('#');
  return Pos == std::string::npos ? I.Key : I.Key.substr(0, Pos);
}

} // namespace

void gnt::buildCommProblems(const RefAnalysisResult &Refs, const Cfg &G,
                            const IntervalFlowGraph &Ifg,
                            const CommOptions &Opts, GntProblem &Read,
                            GntProblem &Write) {
  unsigned U = Refs.Items.size();
  Read = GntProblem(G.size(), U, Direction::Before);
  Write = GntProblem(G.size(), U, Direction::After);

  for (NodeId N = 0; N != G.size(); ++N) {
    const NodeRefs &R = Refs.PerNode[N];
    // READ: references consume.
    for (unsigned Use : R.Uses)
      Read.TakeInit[N].set(Use);
    // WRITE: references to overlapping data steal pending write-backs —
    // the written values must reach their owners before any processor
    // re-fetches them (Figure 3's placement).
    for (unsigned Use : R.Uses)
      for (unsigned I = 0; I != U; ++I)
        if (Refs.Items.item(I).mayOverlap(Refs.Items.item(Use)))
          Write.StealInit[N].set(I);

    for (unsigned DI = 0; DI != R.Defs.size(); ++DI) {
      unsigned Def = R.Defs[DI];
      bool IsReduction = DI < R.DefOps.size() && R.DefOps[DI] != 0;
      // READ: a plain local definition produces the defined section for
      // free (non-owner-computes). A reduction gives nothing: the local
      // partial value is not the global value.
      if (!Opts.OwnerComputes && !IsReduction)
        Read.GiveInit[N].set(Def);
      // WRITE: the definition must be written (or reduced) back.
      if (!Opts.OwnerComputes)
        Write.TakeInit[N].set(Def);
    }

    // Any array definition (distributed or not) steals READ items that
    // overlap the written section or are subscripted through the written
    // array.
    for (const RawDef &D : Refs.ArrayDefs[N]) {
      for (unsigned I = 0; I != U; ++I) {
        const Item &It = Refs.Items.item(I);
        bool Steals = false;
        if (It.Array == D.Array) {
          // Same array: stolen unless it is exactly the defined (and
          // hence freshly given) non-volatile direct section.
          Item DefItem;
          DefItem.Array = D.Array;
          DefItem.Sec = D.Sec;
          DefItem.Volatile = D.Opaque;
          Steals = It.mayOverlap(DefItem);
          // The definition itself is given, not stolen — except for
          // reductions, which update the owner without making the global
          // value locally available.
          if (Steals && !D.Reduction && !D.Opaque && !It.Volatile &&
              !It.isIndirect() && It.Sec == D.Sec)
            Steals = false;
        }
        // Writing the indirection array invalidates items subscripted
        // through it, e.g. a def of a(...) steals x(a(...)).
        if (!Steals && It.isIndirect() && It.IndirectArray == D.Array)
          Steals = D.Opaque || It.Sec.mayOverlap(D.Sec);
        if (Steals)
          Read.StealInit[N].set(I);
      }
    }

    // Indirection-array and scalar invalidation applies to pending
    // write-backs as well: the item's identity changes.
    for (const RawDef &D : Refs.ArrayDefs[N])
      for (unsigned I = 0; I != U; ++I) {
        const Item &It = Refs.Items.item(I);
        if (It.isIndirect() && It.IndirectArray == D.Array &&
            (D.Opaque || It.Sec.mayOverlap(D.Sec)))
          Write.StealInit[N].set(I);
      }
  }

  // Reassigning a scalar a section depends on breaks the value number.
  for (const auto &[Scalar, Nodes] : Refs.ScalarAssigns) {
    for (unsigned I = 0; I != U; ++I) {
      const Item &It = Refs.Items.item(I);
      bool Depends = false;
      for (const std::string &Sym : It.DependsOn)
        Depends |= Sym == Scalar;
      if (!Depends)
        continue;
      for (NodeId N : Nodes) {
        Read.StealInit[N].set(I);
        Write.StealInit[N].set(I);
      }
    }
  }

  // Zero-trip hoisting opt-out (Section 4.1): every loop is treated
  // pessimistically — no consumption hoisted above it, no in-body
  // production counted as available past it.
  if (!Opts.HoistZeroTrip)
    for (NodeId N = 0; N != G.size(); ++N)
      if (N != Ifg.root() && Ifg.isHeader(N)) {
        Read.NoHoistHeaders.push_back(N);
        Write.NoHoistHeaders.push_back(N);
      }
}

namespace {

/// Anchor for production at the program-order entry of \p Node.
AnchorKey entryAnchor(const CfgNode &Node) {
  return {Node.EmitStmt, Node.Where};
}

/// Anchor for production at the program-order exit of \p Node.
AnchorKey exitAnchor(const CfgNode &Node) {
  if (Node.Where == EmitWhere::Before)
    return {Node.EmitStmt, EmitWhere::After};
  return {Node.EmitStmt, Node.Where};
}

} // namespace

void gnt::emitCommPhase(CommPlan &Plan, const Cfg &G,
                        const IntervalFlowGraph &Ifg, const GntRun &Run,
                        Urgency SendUrg, CommOpKind SendKind,
                        CommOpKind RecvKind, CommOpKind AtomicKind,
                        bool Atomic) {
  // Sends precede receives at one point. For READs the send is the EAGER
  // solution; for WRITEs it is the LAZY one (Section 3.1).
  Urgency RecvUrg = SendUrg == Urgency::Eager ? Urgency::Lazy
                                              : Urgency::Eager;
  for (NodeId N : Ifg.preorder()) {
    const CfgNode &Node = G.node(N);
    if (!Node.EmitStmt)
      continue; // Entry/Exit have no print position; the solver pins
                // ROOT's placements to bottom.
    auto emit = [&](const AnchorKey &K, CommOpKind Kind,
                    const BitVector &BV) {
      for (unsigned I : BV)
        Plan.Anchored[K].push_back({Kind, I});
    };
    // Exit production on a branch node (possible for AFTER problems:
    // RES_in of the reversed graph) executes when control leaves the
    // branch on either arm — it must print at the top of *both* arms,
    // not after the merge, or it would incorrectly follow the arms'
    // statements.
    auto emitExit = [&](CommOpKind Kind, const BitVector &BV) {
      if (BV.none())
        return;
      if (Node.Kind == NodeKind::Branch) {
        emit({Node.EmitStmt, EmitWhere::ThenEntry}, Kind, BV);
        emit({Node.EmitStmt, EmitWhere::ElseEntry}, Kind, BV);
        return;
      }
      emit(exitAnchor(Node), Kind, BV);
    };
    AnchorKey In = entryAnchor(Node);
    if (Atomic) {
      emit(In, AtomicKind, Run.resAtEntry(Urgency::Lazy, N));
      emitExit(AtomicKind, Run.resAtExit(Urgency::Lazy, N));
      continue;
    }
    emit(In, SendKind, Run.resAtEntry(SendUrg, N));
    emit(In, RecvKind, Run.resAtEntry(RecvUrg, N));
    emitExit(SendKind, Run.resAtExit(SendUrg, N));
    emitExit(RecvKind, Run.resAtExit(RecvUrg, N));
  }
}

CommPlan gnt::generateComm(const Program &P, const Cfg &G,
                           const IntervalFlowGraph &Ifg,
                           const CommOptions &Opts, unsigned SolverShards,
                           bool CompressUniverse, GntIncrementalContext *Inc) {
  CommPlan Plan;
  Plan.Opts = Opts;
  Plan.Refs = analyzeReferences(P, G);
  buildCommProblems(Plan.Refs, G, Ifg, Opts, Plan.ReadProblem,
                    Plan.WriteProblem);

  if (Opts.GenerateReads)
    Plan.ReadRun =
        Inc ? runGiveNTakeIncremental(Ifg, Plan.ReadProblem, SolverShards,
                                      CompressUniverse, Inc->Read,
                                      Inc->Stats)
            : runGiveNTake(Ifg, Plan.ReadProblem, SolverShards,
                           CompressUniverse);
  if (Opts.GenerateWrites && !Opts.OwnerComputes)
    Plan.WriteRun =
        Inc ? runGiveNTakeIncremental(Ifg, Plan.WriteProblem, SolverShards,
                                      CompressUniverse, Inc->Write,
                                      Inc->Stats)
            : runGiveNTake(Ifg, Plan.WriteProblem, SolverShards,
                           CompressUniverse);

  // Assemble the anchored operation lists. Two phases: at any one program
  // point every write-back precedes every read (the owners must be
  // current before data is re-fetched — Figure 3's ordering); within a
  // phase, nodes contribute in program (preorder) order, sends before
  // receives.
  if (Plan.WriteRun)
    emitCommPhase(Plan, G, Ifg, *Plan.WriteRun, Urgency::Lazy,
                  CommOpKind::WriteSend, CommOpKind::WriteRecv,
                  CommOpKind::AtomicWrite, Opts.Atomic);
  if (Plan.ReadRun)
    emitCommPhase(Plan, G, Ifg, *Plan.ReadRun, Urgency::Eager,
                  CommOpKind::ReadSend, CommOpKind::ReadRecv,
                  CommOpKind::AtomicRead, Opts.Atomic);

  return Plan;
}

std::string CommPlan::annotate(const Program &P) const {
  AstPrinter Printer([this](const Stmt *S, EmitWhere W) {
    std::vector<std::string> Lines;
    auto It = Anchored.find({S, W});
    if (It == Anchored.end())
      return Lines;
    for (const CommOp &Op : It->second) {
      const Item &I = Refs.Items.item(Op.Item);
      std::string Name = commOpName(Op.Kind);
      bool IsWrite = Op.Kind == CommOpKind::WriteSend ||
                     Op.Kind == CommOpKind::WriteRecv ||
                     Op.Kind == CommOpKind::AtomicWrite;
      if (IsWrite && I.ReductionOp)
        Name += std::string("[") + I.ReductionOp + "]";
      Lines.push_back(Name + "{" + displayKey(I) + "}");
    }
    return Lines;
  });
  return Printer.print(P);
}

std::map<CommOpKind, unsigned> CommPlan::staticCounts() const {
  std::map<CommOpKind, unsigned> Counts;
  for (const auto &[Key, Ops] : Anchored)
    for (const CommOp &Op : Ops)
      ++Counts[Op.Kind];
  return Counts;
}

GntVerifyResult CommPlan::verify() const {
  GntVerifyResult All;
  std::vector<std::string> Names = Refs.Items.names();
  for (const std::optional<GntRun> *Run : {&ReadRun, &WriteRun}) {
    if (!Run->has_value())
      continue;
    All.append(verifyGntRun(**Run, Names));
  }
  return All;
}
