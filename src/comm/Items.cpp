//===- comm/Items.cpp - Dataflow universe of array sections -----------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "comm/Items.h"

#include <set>

using namespace gnt;

namespace {

/// Evaluates an affine expression under parameter bindings.
std::optional<long long>
evaluate(const AffineExpr &E, const std::map<std::string, long long> &Params) {
  if (!E.isAffine())
    return std::nullopt;
  long long V = E.getConstTerm();
  for (const auto &[Sym, C] : E.getTerms()) {
    auto It = Params.find(Sym);
    if (It == Params.end())
      return std::nullopt;
    V += C * It->second;
  }
  return V;
}

} // namespace

long long Item::size(const std::map<std::string, long long> &Params,
                     long long DefaultSize) const {
  std::optional<long long> Lo = evaluate(Sec.Lo, Params);
  std::optional<long long> Hi = evaluate(Sec.Hi, Params);
  if (!Lo || !Hi)
    return DefaultSize;
  if (*Hi < *Lo)
    return 0;
  return (*Hi - *Lo) / (Sec.Stride > 0 ? Sec.Stride : 1) + 1;
}

bool Item::mayOverlap(const Item &RHS) const {
  if (Array != RHS.Array)
    return false;
  // Volatile or indirect sections are opaque: assume overlap.
  if (Volatile || RHS.Volatile)
    return true;
  if (isIndirect() || RHS.isIndirect()) {
    // Two indirect items through the same indirection array with provably
    // disjoint indirection sections still may collide (the indirection
    // contents are unknown); stay conservative.
    return true;
  }
  return Sec.mayOverlap(RHS.Sec);
}

unsigned ItemTable::intern(Item I) {
  if (!I.Volatile) {
    auto It = ByKey.find(I.Key);
    if (It != ByKey.end())
      return It->second;
  }
  unsigned Id = static_cast<unsigned>(Items.size());
  if (!I.Volatile)
    ByKey.emplace(I.Key, Id);
  Items.push_back(std::move(I));
  return Id;
}

std::vector<std::string> ItemTable::names() const {
  std::vector<std::string> R;
  R.reserve(Items.size());
  for (const Item &I : Items)
    R.push_back(I.Key);
  return R;
}

void ItemTable::noteDefinitionKind(unsigned Id, char ReduceOp) {
  assert(Id < Items.size() && "bad item id");
  Item &I = Items[Id];
  if (!SeenDef.insert(Id).second) {
    if (I.ReductionOp != ReduceOp)
      I.ReductionOp = 0; // Mixed definition kinds: fall back to plain.
    return;
  }
  I.ReductionOp = ReduceOp;
}

int ItemTable::lookup(const std::string &Key) const {
  auto It = ByKey.find(Key);
  return It == ByKey.end() ? -1 : static_cast<int>(It->second);
}
