//===- comm/RefAnalysis.cpp - Reference analysis for communication ----------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "comm/RefAnalysis.h"

#include "ir/AstPrinter.h"
#include "support/Support.h"

#include <set>

using namespace gnt;

namespace {

/// One enclosing loop: index variable and its (raw affine) bounds.
struct LoopBinding {
  std::string Idx;
  AffineExpr Lo, Hi;
};

class Analyzer {
public:
  Analyzer(const Program &P, const Cfg &G, RefAnalysisResult &R)
      : P(P), G(G), R(R) {
    R.PerNode.assign(G.size(), {});
    R.ArrayDefs.assign(G.size(), {});
    collectStmtNodes();
    collectMutatedScalars();
  }

  void run() { walk(P.getBody()); }

private:
  /// Builds the statement -> evaluating-node map from the CFG.
  void collectStmtNodes() {
    for (NodeId Id = 0; Id != G.size(); ++Id) {
      const CfgNode &N = G.node(Id);
      if (!N.S)
        continue;
      switch (N.Kind) {
      case NodeKind::Stmt:
      case NodeKind::Branch:
      case NodeKind::LoopHeader:
        R.StmtNode[N.S] = Id;
        break;
      default:
        break;
      }
    }
  }

  /// A scalar is mutated if it is assigned anywhere or serves as a loop
  /// index (whose value is only meaningful inside its loop).
  void collectMutatedScalars() {
    forEachStmt(P.getBody(), [&](const Stmt *S) {
      if (const auto *A = dyn_cast<AssignStmt>(S)) {
        if (const auto *V = dyn_cast<VarExpr>(A->getLHS()))
          Mutated.insert(V->getName());
      } else if (const auto *D = dyn_cast<DoStmt>(S)) {
        Mutated.insert(D->getIndexVar());
      }
    });
  }

  NodeId nodeOf(const Stmt *S) const {
    auto It = R.StmtNode.find(S);
    assert(It != R.StmtNode.end() && "statement without CFG node");
    return It->second;
  }

  //===--------------------------------------------------------------------===//
  // Subscript normalization
  //===--------------------------------------------------------------------===//

  /// Expands an affine subscript over the enclosing loops: each in-scope
  /// index variable is replaced by its bound range, innermost first (so
  /// triangular bounds referencing outer indices resolve too).
  Section expandAffine(const AffineExpr &A, bool &UsesMutated) const {
    AffineExpr Lo = A, Hi = A;
    unsigned VaryingIndices = 0;
    long long StrideCoeff = 1;
    for (auto It = Loops.rbegin(); It != Loops.rend(); ++It) {
      long long CLo = Lo.coeffOf(It->Idx);
      if (CLo != 0)
        Lo = Lo.substitute(It->Idx, CLo > 0 ? It->Lo : It->Hi);
      long long CHi = Hi.coeffOf(It->Idx);
      if (CHi != 0)
        Hi = Hi.substitute(It->Idx, CHi > 0 ? It->Hi : It->Lo);
      if (A.coeffOf(It->Idx) != 0) {
        ++VaryingIndices;
        StrideCoeff = A.coeffOf(It->Idx);
      }
    }
    long long Stride = 1;
    if (VaryingIndices == 1 && StrideCoeff != 0)
      Stride = StrideCoeff > 0 ? StrideCoeff : -StrideCoeff;
    if (!Lo.isAffine() || !Hi.isAffine())
      return Section::unknown();
    // Any remaining mutated symbol makes the value number unstable.
    for (const AffineExpr *E : {&Lo, &Hi})
      for (const auto &[Sym, C] : E->getTerms())
        if (C != 0 && Mutated.count(Sym))
          UsesMutated = true;
    return Section(Lo, Hi, Stride);
  }

  void recordDependsOn(Item &I, const Section &S) const {
    std::set<std::string> Syms;
    for (const AffineExpr *E : {&S.Lo, &S.Hi})
      if (E->isAffine())
        for (const auto &[Sym, C] : E->getTerms())
          if (C != 0)
            Syms.insert(Sym);
    I.DependsOn.assign(Syms.begin(), Syms.end());
  }

  /// Builds the item for a reference `Array(Sub)` in the current loop
  /// context.
  Item makeItem(const std::string &Array, const Expr *Sub) {
    Item I;
    I.Array = Array;

    AffineExpr A = AffineExpr::fromExpr(Sub);
    if (A.isAffine()) {
      bool UsesMutated = false;
      I.Sec = expandAffine(A, UsesMutated);
      I.Volatile = UsesMutated || !I.Sec.isKnown();
      recordDependsOn(I, I.Sec);
      I.Key = Array + I.Sec.toString();
      if (I.Volatile)
        I.Key += "#" + itostr(VolatileCounter++);
      return I;
    }

    // One-level indirect reference x(a(affine)).
    if (const auto *AR = dyn_cast<ArrayRefExpr>(Sub)) {
      AffineExpr Inner = AffineExpr::fromExpr(AR->getSubscript());
      if (Inner.isAffine()) {
        bool UsesMutated = false;
        Section InnerSec = expandAffine(Inner, UsesMutated);
        I.IndirectArray = AR->getArray();
        I.Sec = InnerSec;
        I.Volatile = UsesMutated || !InnerSec.isKnown();
        recordDependsOn(I, InnerSec);
        I.Key = Array + "(" + AR->getArray() + InnerSec.toString() + ")";
        if (I.Volatile)
          I.Key += "#" + itostr(VolatileCounter++);
        return I;
      }
    }

    // Anything deeper or non-affine: opaque, unique per occurrence.
    I.Sec = Section::unknown();
    I.Volatile = true;
    I.Key = Array + "(?)#" + itostr(VolatileCounter++);
    return I;
  }

  //===--------------------------------------------------------------------===//
  // Walks
  //===--------------------------------------------------------------------===//

  /// True if \p A has the shape `arr(sub) = arr(sub) op ...` for an
  /// associative op; returns the operator character and the RHS leaf that
  /// is the self-reference.
  char detectReduction(const AssignStmt *A, const Expr *&SelfRef) {
    const auto *LHS = dyn_cast<ArrayRefExpr>(A->getLHS());
    const auto *B = dyn_cast<BinaryExpr>(A->getRHS());
    if (!LHS || !B)
      return 0;
    char Op;
    switch (B->getOp()) {
    case BinaryExpr::Op::Add:
      Op = '+';
      break;
    case BinaryExpr::Op::Mul:
      Op = '*';
      break;
    default:
      return 0;
    }
    std::string LhsText = AstPrinter::printExpr(LHS);
    for (const Expr *Side : {B->getLHS(), B->getRHS()}) {
      const auto *AR = dyn_cast<ArrayRefExpr>(Side);
      if (AR && AstPrinter::printExpr(AR) == LhsText) {
        SelfRef = Side;
        return Op;
      }
    }
    return 0;
  }

  /// scanUses, but ignores the subtree rooted at \p Skip (the reduction
  /// self-reference).
  void scanUsesSkipping(const Expr *E, NodeId N, const Expr *Skip) {
    if (!E || E == Skip)
      return;
    switch (E->getKind()) {
    case Expr::Kind::IntLit:
    case Expr::Kind::Var:
      return;
    case Expr::Kind::ArrayRef: {
      const auto *AR = cast<ArrayRefExpr>(E);
      if (P.isDistributed(AR->getArray()))
        R.PerNode[N].Uses.push_back(
            R.Items.intern(makeItem(AR->getArray(), AR->getSubscript())));
      scanUsesSkipping(AR->getSubscript(), N, Skip);
      return;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      scanUsesSkipping(B->getLHS(), N, Skip);
      scanUsesSkipping(B->getRHS(), N, Skip);
      return;
    }
    case Expr::Kind::Unary:
      scanUsesSkipping(cast<UnaryExpr>(E)->getOperand(), N, Skip);
      return;
    case Expr::Kind::Call:
      for (const ExprPtr &A : cast<CallExpr>(E)->getArgs())
        scanUsesSkipping(A.get(), N, Skip);
      return;
    }
  }

  /// Records every distributed-array read inside \p E as a use at \p N.
  void scanUses(const Expr *E, NodeId N) {
    if (!E)
      return;
    switch (E->getKind()) {
    case Expr::Kind::IntLit:
    case Expr::Kind::Var:
      return;
    case Expr::Kind::ArrayRef: {
      const auto *AR = cast<ArrayRefExpr>(E);
      if (P.isDistributed(AR->getArray()))
        R.PerNode[N].Uses.push_back(
            R.Items.intern(makeItem(AR->getArray(), AR->getSubscript())));
      scanUses(AR->getSubscript(), N);
      return;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      scanUses(B->getLHS(), N);
      scanUses(B->getRHS(), N);
      return;
    }
    case Expr::Kind::Unary:
      scanUses(cast<UnaryExpr>(E)->getOperand(), N);
      return;
    case Expr::Kind::Call:
      for (const ExprPtr &A : cast<CallExpr>(E)->getArgs())
        scanUses(A.get(), N);
      return;
    }
  }

  void walk(const StmtList &List) {
    for (const StmtPtr &SP : List) {
      const Stmt *S = SP.get();
      switch (S->getKind()) {
      case Stmt::Kind::Assign: {
        const auto *A = cast<AssignStmt>(S);
        NodeId N = nodeOf(S);
        // Reductions `a(s) = a(s) op ...` accumulate locally; the
        // self-reference leaf is skipped when scanning uses.
        const Expr *SelfRef = nullptr;
        char ReduceOp = detectReduction(A, SelfRef);
        scanUsesSkipping(A->getRHS(), N, SelfRef);
        if (const auto *LHS = dyn_cast<ArrayRefExpr>(A->getLHS())) {
          scanUses(LHS->getSubscript(), N);
          Item D = makeItem(LHS->getArray(), LHS->getSubscript());
          RawDef Raw{LHS->getArray(), D.Sec, D.Volatile || D.isIndirect(),
                     ReduceOp != 0};
          R.ArrayDefs[N].push_back(Raw);
          if (P.isDistributed(LHS->getArray())) {
            unsigned Id = R.Items.intern(std::move(D));
            R.Items.noteDefinitionKind(Id, ReduceOp);
            R.PerNode[N].Defs.push_back(Id);
            R.PerNode[N].DefOps.push_back(ReduceOp);
          }
        } else if (const auto *V = dyn_cast<VarExpr>(A->getLHS())) {
          R.ScalarAssigns[V->getName()].push_back(N);
        }
        break;
      }
      case Stmt::Kind::Do: {
        const auto *D = cast<DoStmt>(S);
        NodeId N = nodeOf(S);
        scanUses(D->getLo(), N);
        scanUses(D->getHi(), N);
        Loops.push_back({D->getIndexVar(), AffineExpr::fromExpr(D->getLo()),
                         AffineExpr::fromExpr(D->getHi())});
        walk(D->getBody());
        Loops.pop_back();
        break;
      }
      case Stmt::Kind::If: {
        const auto *If = cast<IfStmt>(S);
        NodeId N = nodeOf(S);
        scanUses(If->getCond(), N);
        walk(If->getThen());
        walk(If->getElse());
        break;
      }
      case Stmt::Kind::Goto:
      case Stmt::Kind::Continue:
        break;
      }
    }
  }

  const Program &P;
  const Cfg &G;
  RefAnalysisResult &R;
  std::vector<LoopBinding> Loops;
  std::set<std::string> Mutated;
  unsigned VolatileCounter = 0;
};

} // namespace

RefAnalysisResult gnt::analyzeReferences(const Program &P, const Cfg &G) {
  RefAnalysisResult R;
  Analyzer A(P, G, R);
  A.run();
  return R;
}
