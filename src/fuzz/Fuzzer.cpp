//===- fuzz/Fuzzer.cpp - Coverage-guided metamorphic fuzzer -----------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "fuzz/Minimizer.h"
#include "fuzz/Mutator.h"
#include "gen/RandomProgram.h"
#include "ir/AstPrinter.h"
#include "support/Hashing.h"
#include "support/Support.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <sstream>

using namespace gnt;
using namespace gnt::fuzz;

namespace {

unsigned pick(std::mt19937 &Rng, unsigned N) {
  return static_cast<unsigned>(Rng() % N);
}

bool chance(std::mt19937 &Rng, double P) {
  return (Rng() >> 8) * (1.0 / 16777216.0) < P;
}

std::vector<std::string> loadSeedFiles(const std::string &Dir) {
  std::vector<std::string> Sources;
  std::error_code Ec;
  std::vector<std::filesystem::path> Paths;
  for (const auto &Entry :
       std::filesystem::directory_iterator(Dir, Ec)) {
    if (Entry.path().extension() == ".fm")
      Paths.push_back(Entry.path());
  }
  std::sort(Paths.begin(), Paths.end()); // Deterministic seed order.
  for (const auto &Path : Paths) {
    std::ifstream In(Path);
    if (!In)
      continue;
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Sources.push_back(Buf.str());
  }
  return Sources;
}

std::string hex64(std::uint64_t V) {
  static const char Digits[] = "0123456789abcdef";
  std::string S(16, '0');
  for (int I = 15; I >= 0; --I) {
    S[static_cast<std::size_t>(I)] = Digits[V & 0xF];
    V >>= 4;
  }
  return S;
}

std::string sanitizeForFilename(const std::string &S) {
  std::string Out;
  for (char C : S)
    Out += (std::isalnum(static_cast<unsigned char>(C)) || C == '-')
               ? C
               : '-';
  return Out;
}

} // namespace

std::string gnt::fuzz::provenanceHeader(const std::string &Tag,
                                        unsigned Seed,
                                        const CoverageFeatures &Features) {
  return "! gnt-fuzz: " + Tag + " seed=" + itostr(Seed) + " " +
         Features.describe() + "\n";
}

std::string gnt::fuzz::distillProgram(const std::string &Source,
                                      unsigned Budget) {
  OracleOutcome Base = runOracle(Source);
  if (!Base.clean() || !Base.WerrorClean)
    return Source;
  std::uint64_t Key = Base.CoverageKey;
  return minimizeSource(
      Source,
      [&](const std::string &Candidate) {
        OracleOutcome O = runOracle(Candidate);
        return O.clean() && O.WerrorClean && O.CoverageKey == Key;
      },
      Budget);
}

FuzzReport gnt::fuzz::runFuzzer(const FuzzOptions &Opts) {
  FuzzReport Report;
  std::mt19937 Rng(Opts.Seed);
  auto Start = std::chrono::steady_clock::now();
  auto Elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  };

  struct CorpusEntry {
    std::string Source;
    std::uint64_t CoverageKey;
  };
  std::vector<CorpusEntry> Corpus;
  std::set<std::uint64_t> SeenKeys;
  std::set<std::string> ReportedClasses;

  auto HandleFinding = [&](const std::string &Source,
                           const OracleOutcome &Outcome) {
    const OracleFinding &First = Outcome.Findings.front();
    std::string Class = findingClass(First.Kind);
    if (!ReportedClasses.insert(Class).second)
      return; // Already minimized an instance of this class.
    if (Opts.Verbose)
      std::fprintf(stderr, "gnt-fuzz: FINDING %s — minimizing...\n",
                   First.Kind.c_str());
    std::string Minimized = minimizeSource(
        Source,
        [&](const std::string &Candidate) {
          OracleOutcome O = runOracle(Candidate, Opts.Oracle);
          for (const OracleFinding &F : O.Findings)
            if (findingClass(F.Kind) == Class)
              return true;
          return false;
        },
        Opts.MinimizeBudget);

    FuzzFinding Out;
    Out.Class = Class;
    Out.Kind = First.Kind;
    Out.Detail = First.Detail;
    Out.Source = Source;
    Out.Minimized = Minimized;
    if (!Opts.OutDir.empty()) {
      std::error_code Ec;
      std::filesystem::create_directories(Opts.OutDir, Ec);
      OracleOutcome MinOut = runOracle(Minimized, Opts.Oracle);
      std::string Name = "fuzz-" + sanitizeForFilename(Class) + "-" +
                         hex64(fnv1a(Minimized)).substr(8) + ".fm";
      std::string Path = Opts.OutDir + "/" + Name;
      std::ofstream File(Path);
      if (File) {
        File << provenanceHeader(Class, Opts.Seed, MinOut.Features)
             << Minimized;
        Out.Path = Path;
      }
    }
    Report.Findings.push_back(std::move(Out));
  };

  auto Execute = [&](const std::string &Source) {
    ++Report.Executed;
    OracleOutcome Outcome = runOracle(Source, Opts.Oracle);
    if (!Outcome.Valid)
      return;
    ++Report.Valid;
    if (SeenKeys.insert(Outcome.CoverageKey).second) {
      ++Report.Novel;
      Corpus.push_back({Source, Outcome.CoverageKey});
    }
    if (!Outcome.Findings.empty())
      HandleFinding(Source, Outcome);
  };

  // Seed round: on-disk corpus plus generated programs across every
  // structure bucket.
  std::vector<std::string> Seeds;
  if (!Opts.CorpusDir.empty())
    Seeds = loadSeedFiles(Opts.CorpusDir);
  for (unsigned Bucket = 0; Bucket != NumGenBuckets; ++Bucket)
    for (unsigned K = 0; K != 2; ++K) {
      GenConfig C = genConfigForBucket(Bucket, Opts.Seed + 17 * K);
      Seeds.push_back(AstPrinter().print(generateRandomProgram(C)));
    }
  Report.SeedInputs = Seeds.size();
  for (const std::string &S : Seeds) {
    if (Report.Executed >= Opts.MaxInputs ||
        (Opts.MaxSeconds > 0 && Elapsed() >= Opts.MaxSeconds))
      break;
    Execute(S);
    if (Opts.StopOnFinding && !Report.Findings.empty())
      break;
  }

  // Mutation rounds.
  while (Report.Executed < Opts.MaxInputs &&
         !(Opts.MaxSeconds > 0 && Elapsed() >= Opts.MaxSeconds) &&
         !(Opts.StopOnFinding && !Report.Findings.empty())) {
    if (Corpus.empty())
      break; // Every seed was invalid; nothing to mutate.
    const std::string &Parent =
        Corpus[pick(Rng, static_cast<unsigned>(Corpus.size()))].Source;
    std::string Child;
    if (Corpus.size() >= 2 && chance(Rng, 0.2)) {
      const std::string &Other =
          Corpus[pick(Rng, static_cast<unsigned>(Corpus.size()))].Source;
      Child = crossoverSources(Parent, Other, Rng);
    } else {
      Child = mutateSource(Parent, Rng);
    }
    if (Child.empty())
      continue;
    Execute(Child);
    if (Opts.Verbose && Report.Executed % 100 == 0)
      std::fprintf(stderr,
                   "gnt-fuzz: %llu executed, %llu valid, %llu novel, "
                   "%zu findings (%.1fs)\n",
                   Report.Executed, Report.Valid, Report.Novel,
                   Report.Findings.size(), Elapsed());
  }

  Report.CorpusSize = static_cast<unsigned>(Corpus.size());
  return Report;
}
