//===- fuzz/NetOracle.cpp - Socket-path differential oracle -----------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/NetOracle.h"

#include "gen/RandomProgram.h"
#include "ir/AstPrinter.h"
#include "net/NetServer.h"
#include "service/BatchServer.h"
#include "support/Json.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <random>
#include <sstream>

using namespace gnt;
using namespace gnt::fuzz;
using namespace gnt::net;

namespace {

/// Pipeline option variants each program replays under; rendered into
/// the request's "options" object so the socket and stdio paths parse
/// the same bytes.
const char *const OptionVariants[] = {
    "",                            // Defaults (comm mode).
    "{\"mode\":\"pre\"}",          // Expression PRE.
    "{\"solver_shards\":7}",       // Sharded solve (same bytes).
    "{\"compress_universe\":true}" // Compressed solve (same bytes).
};
constexpr unsigned NumVariants =
    sizeof(OptionVariants) / sizeof(OptionVariants[0]);

std::string requestLine(const std::string &Id, const std::string &Source,
                        const char *Options) {
  JsonWriter W;
  W.beginObject();
  W.key("id").value(Id);
  W.key("source").value(Source);
  if (Options[0])
    W.key("options").raw(Options);
  W.endObject();
  return W.str();
}

std::vector<std::string> collectSources(const NetOracleOptions &Opts) {
  std::vector<std::string> Sources;
  if (!Opts.CorpusDir.empty()) {
    std::vector<std::filesystem::path> Files;
    std::error_code Ec;
    for (const auto &E :
         std::filesystem::directory_iterator(Opts.CorpusDir, Ec))
      if (E.path().extension() == ".fm")
        Files.push_back(E.path());
    std::sort(Files.begin(), Files.end()); // Directory order is not ours.
    for (const auto &File : Files) {
      if (Sources.size() >= Opts.MaxPrograms)
        break;
      std::ifstream In(File);
      if (!In)
        continue;
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Sources.push_back(Buf.str());
    }
  }
  // Top up with generated programs across all structure buckets.
  unsigned Seed = Opts.Seed;
  while (Sources.size() < Opts.MaxPrograms) {
    GenConfig GC = genConfigForBucket(
        static_cast<unsigned>(Sources.size()) % NumGenBuckets, Seed++);
    Sources.push_back(AstPrinter().print(generateRandomProgram(GC)));
  }
  return Sources;
}

int dialLoopback(std::uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return -1;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  timeval Tv{60, 0};
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  return Fd;
}

bool sendAll(int Fd, const std::string &Data) {
  const char *P = Data.data();
  std::size_t Len = Data.size();
  while (Len) {
    ssize_t W = ::write(Fd, P, Len);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += W;
    Len -= static_cast<std::size_t>(W);
  }
  return true;
}

std::vector<std::string> recvLines(int Fd) {
  std::string Data;
  char Buf[64 * 1024];
  for (;;) {
    ssize_t R = ::read(Fd, Buf, sizeof(Buf));
    if (R < 0 && errno == EINTR)
      continue;
    if (R <= 0)
      break;
    Data.append(Buf, static_cast<std::size_t>(R));
  }
  std::vector<std::string> Lines;
  std::size_t Pos = 0;
  while (Pos < Data.size()) {
    std::size_t Nl = Data.find('\n', Pos);
    if (Nl == std::string::npos)
      break;
    Lines.push_back(Data.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  return Lines;
}

/// First byte offset where \p A and \p B differ, rendered for humans.
std::string diffDetail(const std::string &A, const std::string &B) {
  std::size_t N = std::min(A.size(), B.size());
  std::size_t At = 0;
  while (At < N && A[At] == B[At])
    ++At;
  std::ostringstream Out;
  Out << "first divergence at byte " << At << ": socket `"
      << A.substr(At, 32) << "` vs serial `" << B.substr(At, 32) << "`";
  return Out.str();
}

} // namespace

NetOracleReport gnt::fuzz::runNetOracle(const NetOracleOptions &Opts) {
  NetOracleReport Report;

  std::vector<std::string> Sources = collectSources(Opts);
  Report.Programs = Sources.size();

  // Every (program, option-variant) pair becomes one request line.
  std::vector<std::string> Lines;
  for (unsigned P = 0; P < Sources.size(); ++P)
    for (unsigned V = 0; V < NumVariants; ++V)
      Lines.push_back(requestLine("p" + std::to_string(P) + "v" +
                                      std::to_string(V),
                                  Sources[P], OptionVariants[V]));

  // The serial stdio reference.
  ServiceConfig SerialConfig;
  SerialConfig.Workers = 0;
  std::vector<std::string> Reference = BatchServer(SerialConfig).run(Lines);

  // The live socket server.
  ServiceConfig SC;
  SC.Workers = Opts.Workers;
  NetConfig NC;
  NC.Port = 0;
  NetServer Server(SC, NC);
  std::string Error;
  if (!Server.start(Error)) {
    Report.Findings.push_back({"net.start", Error, ""});
    return Report;
  }

  // Seed-shuffled arrival, scattered over the connections.
  std::vector<unsigned> Order(Lines.size());
  std::iota(Order.begin(), Order.end(), 0u);
  std::mt19937 Rng(Opts.Seed * 2654435761u + 1);
  std::shuffle(Order.begin(), Order.end(), Rng);

  unsigned NumConns = Opts.Connections ? Opts.Connections : 1;
  std::vector<int> Fds(NumConns, -1);
  std::vector<std::vector<unsigned>> PerConn(NumConns);
  for (unsigned C = 0; C < NumConns; ++C) {
    Fds[C] = dialLoopback(Server.port());
    if (Fds[C] < 0) {
      Report.Findings.push_back({"net.connect", std::strerror(errno), ""});
      for (int Fd : Fds)
        if (Fd >= 0)
          ::close(Fd);
      Server.requestDrain();
      Server.join();
      return Report;
    }
  }
  std::vector<std::string> Batches(NumConns);
  for (unsigned K = 0; K < Order.size(); ++K) {
    Batches[K % NumConns] += Lines[Order[K]];
    Batches[K % NumConns] += '\n';
    PerConn[K % NumConns].push_back(Order[K]);
  }
  for (unsigned C = 0; C < NumConns; ++C) {
    if (!sendAll(Fds[C], Batches[C]))
      Report.Findings.push_back({"net.send", std::strerror(errno), ""});
    ::shutdown(Fds[C], SHUT_WR);
  }

  for (unsigned C = 0; C < NumConns; ++C) {
    std::vector<std::string> Got = recvLines(Fds[C]);
    ::close(Fds[C]);
    if (Got.size() != PerConn[C].size()) {
      std::ostringstream Out;
      Out << "connection " << C << " got " << Got.size()
          << " responses for " << PerConn[C].size() << " requests";
      Report.Findings.push_back({"net.missing-response", Out.str(), ""});
      continue;
    }
    for (unsigned K = 0; K < Got.size(); ++K) {
      const std::string &Want = Reference[PerConn[C][K]];
      ++Report.Requests;
      if (Got[K] != Want)
        Report.Findings.push_back({"net.payload-diff",
                                   diffDetail(Got[K], Want),
                                   Lines[PerConn[C][K]]});
    }
  }

  Server.requestDrain();
  Server.join();

  if (Opts.Verbose)
    std::fprintf(stderr,
                 "net-oracle: %llu requests over %u connections, "
                 "%zu findings\n",
                 Report.Requests, NumConns, Report.Findings.size());
  return Report;
}
