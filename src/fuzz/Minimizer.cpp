//===- fuzz/Minimizer.cpp - Delta-debugging reducer -------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Minimizer.h"

#include "frontend/Parser.h"
#include "fuzz/Clone.h"
#include "ir/AstBuilder.h"
#include "ir/AstPrinter.h"
#include "support/Support.h"

#include <set>

using namespace gnt;
using namespace gnt::fuzz;

namespace {

void gatherListsFrom(StmtList &L, std::vector<StmtList *> &Out) {
  Out.push_back(&L);
  for (StmtPtr &S : L) {
    if (auto *D = dyn_cast<DoStmt>(S.get()))
      gatherListsFrom(D->getBodyRef(), Out);
    else if (auto *If = dyn_cast<IfStmt>(S.get())) {
      gatherListsFrom(If->getThenRef(), Out);
      gatherListsFrom(If->getElseRef(), Out);
    }
  }
}

/// One shrink edit, addressed against the deterministic DFS list order
/// of a fresh parse.
struct Edit {
  enum Kind {
    RemoveRun,    ///< Erase [Start, Start+Len) of list #List.
    UnwrapDo,     ///< Replace the DO at (List, Start) with its body.
    UnwrapIf,     ///< Replace the IF at (List, Start) with its then-arm.
    DropElse,     ///< Clear the else-arm of the IF at (List, Start).
    SimplifySub,  ///< Replace the #Start'th array subscript with `1`.
    DemoteArray,  ///< Make the #Start'th distributed array local.
    DropDecl,     ///< Remove the #Start'th unreferenced declaration.
  } K;
  unsigned List = 0;
  unsigned Start = 0;
  unsigned Len = 1;
};

std::vector<std::string> referencedArrays(const Program &P) {
  std::set<std::string> Used;
  forEachStmt(P.getBody(), [&](const Stmt *S) {
    auto Scan = [&](const Expr *Root) {
      if (!Root)
        return;
      forEachExpr(Root, [&](const Expr *E) {
        if (const auto *A = dyn_cast<ArrayRefExpr>(E))
          Used.insert(A->getArray());
      });
    };
    switch (S->getKind()) {
    case Stmt::Kind::Assign:
      Scan(cast<AssignStmt>(S)->getLHS());
      Scan(cast<AssignStmt>(S)->getRHS());
      break;
    case Stmt::Kind::Do:
      Scan(cast<DoStmt>(S)->getLo());
      Scan(cast<DoStmt>(S)->getHi());
      break;
    case Stmt::Kind::If:
      Scan(cast<IfStmt>(S)->getCond());
      break;
    default:
      break;
    }
  });
  return {Used.begin(), Used.end()};
}

/// All subscript slots of the program, in DFS statement order.
std::vector<ExprPtr *> subscriptSlots(Program &P) {
  std::vector<ExprPtr *> Out;
  std::function<void(ExprPtr &)> ScanExpr = [&](ExprPtr &E) {
    if (!E)
      return;
    if (auto *A = dyn_cast<ArrayRefExpr>(E.get())) {
      Out.push_back(&A->getSubscriptPtr());
      ScanExpr(A->getSubscriptPtr());
    } else if (auto *B = dyn_cast<BinaryExpr>(E.get())) {
      ScanExpr(B->getLHSPtr());
      ScanExpr(B->getRHSPtr());
    }
  };
  std::function<void(StmtList &)> ScanList = [&](StmtList &L) {
    for (StmtPtr &S : L) {
      if (auto *A = dyn_cast<AssignStmt>(S.get())) {
        ScanExpr(A->getLHSPtr());
        ScanExpr(A->getRHSPtr());
      } else if (auto *D = dyn_cast<DoStmt>(S.get())) {
        ScanExpr(D->getLoPtr());
        ScanExpr(D->getHiPtr());
        ScanList(D->getBodyRef());
      } else if (auto *If = dyn_cast<IfStmt>(S.get())) {
        ScanList(If->getThenRef());
        ScanList(If->getElseRef());
      }
    }
  };
  ScanList(P.getBody());
  return Out;
}

/// Enumerates every applicable shrink edit of \p P, large bites first.
std::vector<Edit> enumerateEdits(Program &P) {
  std::vector<Edit> Edits;
  std::vector<StmtList *> Lists;
  gatherListsFrom(P.getBody(), Lists);

  // Chunked statement removal: halves, quarters, ..., singles.
  for (unsigned ChunkLen : {8u, 4u, 2u, 1u})
    for (unsigned LI = 0; LI != Lists.size(); ++LI) {
      StmtList &L = *Lists[LI];
      if (L.size() < ChunkLen || (ChunkLen > 1 && L.size() == ChunkLen))
        continue;
      for (unsigned S = 0; S + ChunkLen <= L.size(); S += ChunkLen)
        Edits.push_back({Edit::RemoveRun, LI, S, ChunkLen});
    }

  // Structure unwrapping.
  for (unsigned LI = 0; LI != Lists.size(); ++LI)
    for (unsigned I = 0; I != Lists[LI]->size(); ++I) {
      const Stmt *S = (*Lists[LI])[I].get();
      if (S->getKind() == Stmt::Kind::Do)
        Edits.push_back({Edit::UnwrapDo, LI, I, 1});
      else if (const auto *If = dyn_cast<IfStmt>(S)) {
        if (If->hasElse())
          Edits.push_back({Edit::DropElse, LI, I, 1});
        Edits.push_back({Edit::UnwrapIf, LI, I, 1});
      }
    }

  // Subscript simplification (skip ones that are already `1`).
  std::vector<ExprPtr *> Subs = subscriptSlots(P);
  for (unsigned I = 0; I != Subs.size(); ++I) {
    const auto *Lit = dyn_cast<IntLitExpr>(Subs[I]->get());
    if (!Lit || Lit->getValue() != 1)
      Edits.push_back({Edit::SimplifySub, 0, I, 1});
  }

  // Item-universe shrinking and dead declarations.
  std::vector<std::string> Used = referencedArrays(P);
  std::set<std::string> UsedSet(Used.begin(), Used.end());
  unsigned Idx = 0;
  for (const auto &[Name, Info] : P.getArrays()) {
    if (Info.Distributed)
      Edits.push_back({Edit::DemoteArray, 0, Idx, 1});
    if (!UsedSet.count(Name))
      Edits.push_back({Edit::DropDecl, 0, Idx, 1});
    ++Idx;
  }
  return Edits;
}

/// Applies \p E to a fresh parse of \p Source; returns "" when the edit
/// no longer applies (stale coordinates are simply skipped).
std::string applyEdit(const std::string &Source, const Edit &E) {
  ParseResult PR = parseProgram(Source);
  if (!PR.success())
    return "";
  Program P = std::move(PR.Prog);
  std::vector<StmtList *> Lists;
  gatherListsFrom(P.getBody(), Lists);

  switch (E.K) {
  case Edit::RemoveRun: {
    if (E.List >= Lists.size() || E.Start + E.Len > Lists[E.List]->size())
      return "";
    StmtList &L = *Lists[E.List];
    L.erase(L.begin() + E.Start, L.begin() + E.Start + E.Len);
    break;
  }
  case Edit::UnwrapDo: {
    if (E.List >= Lists.size() || E.Start >= Lists[E.List]->size())
      return "";
    StmtList &L = *Lists[E.List];
    auto *D = dyn_cast<DoStmt>(L[E.Start].get());
    if (!D)
      return "";
    StmtList Body = std::move(D->getBodyRef());
    L.erase(L.begin() + E.Start);
    for (unsigned I = 0; I != Body.size(); ++I)
      L.insert(L.begin() + E.Start + I, std::move(Body[I]));
    break;
  }
  case Edit::UnwrapIf: {
    if (E.List >= Lists.size() || E.Start >= Lists[E.List]->size())
      return "";
    StmtList &L = *Lists[E.List];
    auto *If = dyn_cast<IfStmt>(L[E.Start].get());
    if (!If)
      return "";
    StmtList Then = std::move(If->getThenRef());
    L.erase(L.begin() + E.Start);
    for (unsigned I = 0; I != Then.size(); ++I)
      L.insert(L.begin() + E.Start + I, std::move(Then[I]));
    break;
  }
  case Edit::DropElse: {
    if (E.List >= Lists.size() || E.Start >= Lists[E.List]->size())
      return "";
    auto *If = dyn_cast<IfStmt>((*Lists[E.List])[E.Start].get());
    if (!If || !If->hasElse())
      return "";
    If->getElseRef().clear();
    break;
  }
  case Edit::SimplifySub: {
    std::vector<ExprPtr *> Subs = subscriptSlots(P);
    if (E.Start >= Subs.size())
      return "";
    *Subs[E.Start] = build::lit(1);
    break;
  }
  case Edit::DemoteArray:
  case Edit::DropDecl: {
    std::vector<std::string> Names;
    for (const auto &[Name, Info] : P.getArrays())
      Names.push_back(Name);
    if (E.Start >= Names.size())
      return "";
    std::map<std::string, bool> Decls;
    for (const auto &[Name, Info] : P.getArrays())
      Decls[Name] = Info.Distributed;
    if (E.K == Edit::DemoteArray)
      Decls[Names[E.Start]] = false;
    else
      Decls.erase(Names[E.Start]);
    P = rebuildProgram(std::move(P.getBody()), Decls);
    break;
  }
  }
  return AstPrinter().print(P);
}

} // namespace

std::string gnt::fuzz::minimizeSource(const std::string &Source,
                                      const ReproPredicate &StillFails,
                                      unsigned MaxCandidates,
                                      MinimizeStats *Stats) {
  std::string Best = Source;
  MinimizeStats Local;
  bool Progress = true;
  while (Progress && Local.Candidates < MaxCandidates) {
    Progress = false;
    ParseResult PR = parseProgram(Best);
    if (!PR.success())
      break;
    std::vector<Edit> Edits = enumerateEdits(PR.Prog);
    for (const Edit &E : Edits) {
      if (Local.Candidates >= MaxCandidates)
        break;
      std::string Candidate = applyEdit(Best, E);
      if (Candidate.empty() || Candidate == Best)
        continue;
      ++Local.Candidates;
      if (StillFails(Candidate)) {
        Best = std::move(Candidate);
        ++Local.Accepted;
        Progress = true;
        break; // Re-enumerate against the smaller program.
      }
    }
  }
  if (Stats)
    *Stats = Local;
  return Best;
}
