//===- fuzz/SpecFuzz.cpp - Analysis-spec fuzzer -----------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/SpecFuzz.h"

#include "analysis/SpecCompile.h"
#include "analysis/SpecLang.h"
#include "cfg/CfgBuilder.h"
#include "gen/RandomProgram.h"
#include "interval/IntervalFlowGraph.h"
#include "support/Support.h"

#include <cstdio>
#include <random>
#include <sstream>
#include <vector>

using namespace gnt;
using namespace gnt::fuzz;

namespace {

/// One generated test program with its built graphs, reused across
/// every accepted spec (building them dominates the solve cost).
struct TestProgram {
  Program Prog;
  Cfg G;
  IntervalFlowGraph Ifg;
};

/// Builds ProgramsPerSpec programs across the generator's structure
/// buckets, skipping the (rare) configs whose CFG or interval build
/// fails — spec fuzzing needs solvable graphs, not frontend coverage.
std::vector<TestProgram> buildTestPrograms(unsigned Seed, unsigned Count) {
  std::vector<TestProgram> Out;
  for (unsigned I = 0; Out.size() < Count && I < Count * 4; ++I) {
    GenConfig C = genConfigForBucket(I % NumGenBuckets, Seed + I);
    Program P = generateRandomProgram(C);
    CfgBuildResult CR = buildCfg(P);
    if (!CR.success())
      continue;
    auto IR = IntervalFlowGraph::build(CR.G);
    if (!IR.success())
      continue;
    TestProgram T;
    T.Prog = std::move(P);
    T.G = std::move(CR.G);
    T.Ifg = std::move(*IR.Ifg);
    Out.push_back(std::move(T));
  }
  return Out;
}

/// Raw-draw helpers (same portability discipline as gen/RandomProgram:
/// never distribution adaptors, whose output is implementation
/// defined).
unsigned draw(std::mt19937 &Rng, unsigned N) { return Rng() % N; }

const char *pickValue(std::mt19937 &Rng, const char *const *Pool,
                      unsigned N) {
  return Pool[draw(Rng, N)];
}

/// Random set expression of depth <= 3, possibly mentioning `in`.
std::string randomExpr(std::mt19937 &Rng, unsigned Depth) {
  static const char *const Atoms[] = {"in",    "take", "give",
                                      "steal", "empty", "all"};
  if (Depth == 0 || draw(Rng, 3) == 0)
    return Atoms[draw(Rng, 6)];
  switch (draw(Rng, 4)) {
  case 0:
    return "~" + randomExpr(Rng, Depth - 1);
  case 1:
    return "(" + randomExpr(Rng, Depth - 1) + " | " +
           randomExpr(Rng, Depth - 1) + ")";
  case 2:
    return "(" + randomExpr(Rng, Depth - 1) + " & " +
           randomExpr(Rng, Depth - 1) + ")";
  default:
    return "(" + randomExpr(Rng, Depth - 1) + " - " +
           randomExpr(Rng, Depth - 1) + ")";
  }
}

/// Mutates one spec text: line-level surgery plus targeted value and
/// transfer swaps. Roughly half the results should still lint clean.
std::string mutateSpec(const std::string &Base, std::mt19937 &Rng) {
  std::vector<std::string> Lines;
  std::istringstream In(Base);
  for (std::string L; std::getline(In, L);)
    Lines.push_back(L);
  if (Lines.empty())
    Lines.push_back("universe items");

  static const char *const Directions[] = {"forward", "backward",
                                           "sideways"};
  static const char *const Confluences[] = {"any", "all", "some"};
  static const char *const Universes[] = {"items", "exprs", "defs",
                                          "galaxies"};
  static const char *const Boundaries[] = {"empty", "all", "most"};
  static const char *const Starts[] = {"entry", "exit", "middle"};

  switch (draw(Rng, 8)) {
  case 0: // Replace/insert a direction line.
    Lines.push_back(std::string("direction ") + pickValue(Rng, Directions, 3));
    break;
  case 1:
    Lines.push_back(std::string("confluence ") + pickValue(Rng, Confluences, 3));
    break;
  case 2:
    Lines.push_back(std::string("universe ") + pickValue(Rng, Universes, 4));
    break;
  case 3:
    Lines.push_back(std::string("boundary ") + pickValue(Rng, Boundaries, 3));
    break;
  case 4:
    Lines.push_back(std::string("start ") + pickValue(Rng, Starts, 3));
    break;
  case 5: // Delete a random line.
    Lines.erase(Lines.begin() + draw(Rng, static_cast<unsigned>(Lines.size())));
    break;
  case 6: // Duplicate a random line (duplicate-key bait).
    Lines.push_back(Lines[draw(Rng, static_cast<unsigned>(Lines.size()))]);
    break;
  default: // Replace the transfer with a random expression tree.
    for (auto It = Lines.begin(); It != Lines.end();) {
      const std::string &L = *It;
      if (L.rfind("gen", 0) == 0 || L.rfind("kill", 0) == 0 ||
          L.rfind("transfer", 0) == 0)
        It = Lines.erase(It);
      else
        ++It;
    }
    Lines.push_back("transfer out = " + randomExpr(Rng, 3));
    break;
  }
  if (draw(Rng, 8) == 0) // Occasionally inject a junk key too.
    Lines.push_back("flux capacitor");

  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

bool hasSpecError(const DiagnosticSet &Diags) {
  for (const Diagnostic &D : Diags.all())
    if (D.Severity == DiagSeverity::Error && D.Check == CheckId::Spec)
      return true;
  return false;
}

} // namespace

SpecFuzzReport gnt::fuzz::runSpecFuzzer(const SpecFuzzOptions &Opts) {
  SpecFuzzReport Report;
  std::mt19937 Rng(Opts.Seed);

  std::vector<TestProgram> Programs =
      buildTestPrograms(Opts.Seed, Opts.ProgramsPerSpec);

  // (shards, compress) strategy grid; all four must agree byte for
  // byte with each other and with the iterative oracle inside each run.
  static const std::pair<unsigned, bool> Strategies[] = {
      {0, false}, {7, false}, {0, true}, {7, true}};

  auto Check = [&](const std::string &Text) {
    ++Report.Tried;
    SpecParseResult PR = parseAndLintAnalysisSpec(Text);
    if (!PR.ok()) {
      ++Report.Rejected;
      // Oracle 1: every rejection must be explained by a structured
      // Spec diagnostic — the linter has no silent failure mode.
      if (!hasSpecError(PR.Diags))
        Report.Findings.push_back(
            {"spec.lint.no-diagnostic",
             "rejected spec carries no CheckId::Spec error", Text});
      return;
    }
    ++Report.Accepted;

    // Oracle 2: solve on every test program under every strategy; the
    // differential inside runAnalysisSpec checks iterative-vs-arena,
    // and the hash comparison here checks strategy invariance.
    for (const TestProgram &T : Programs) {
      uint64_t FirstHash = 0;
      bool HaveHash = false;
      for (const auto &[Shards, Compress] : Strategies) {
        AnalysisRun Run =
            runAnalysisSpec(Text, T.Prog, T.G, T.Ifg, Shards, Compress);
        if (!Run.ok()) {
          Report.Findings.push_back(
              {"spec.differential",
               "accepted spec failed its backend differential (shards=" +
                   itostr(Shards) + ", compress=" + itostr(Compress) + ")",
               Text});
          return;
        }
        if (!HaveHash) {
          FirstHash = Run.solutionHash();
          HaveHash = true;
        } else if (Run.solutionHash() != FirstHash) {
          Report.Findings.push_back(
              {"spec.invariance",
               "solution hash changed under (shards=" + itostr(Shards) +
                   ", compress=" + itostr(Compress) + ")",
               Text});
          return;
        }
      }
    }
  };

  // The unmutated built-ins go first: the campaign is vacuous if they
  // do not pass both oracles.
  for (const auto &[Name, Text] : builtinAnalysisSpecs()) {
    if (Report.Tried >= Opts.MaxSpecs)
      break;
    Check(Text);
  }

  while (Report.Tried < Opts.MaxSpecs) {
    const auto &Builtins = builtinAnalysisSpecs();
    const std::string &Base =
        Builtins[draw(Rng, static_cast<unsigned>(Builtins.size()))].second;
    std::string Mutant = mutateSpec(Base, Rng);
    // A second mutation round half the time compounds defects.
    if (draw(Rng, 2) == 0)
      Mutant = mutateSpec(Mutant, Rng);
    Check(Mutant);
    if (Opts.Verbose && Report.Tried % 50 == 0)
      std::fprintf(stderr,
                   "gnt-fuzz(specs): %llu tried, %llu accepted, %zu findings\n",
                   Report.Tried, Report.Accepted, Report.Findings.size());
  }
  return Report;
}
