//===- fuzz/SpecFuzz.h - Analysis-spec fuzzer ------------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mutation fuzzer for the declarative analysis-spec language
/// (analysis/SpecLang.h). The corpus is the four built-in specs; each
/// iteration mutates one — value swaps (including invalid ones), line
/// deletion/duplication, random transfer expressions, junk keys — and
/// checks two oracle layers:
///
///  1. Linter totality: a rejected spec must carry at least one
///     structured CheckId::Spec error; silent rejection or an
///     unexplained crash is a finding.
///  2. Solver soundness: an accepted spec is compiled and solved on a
///     battery of generated programs under every strategy combination
///     (serial/sharded x plain/compressed). Any differential failure
///     between the iterative and arena backends, or any solution-hash
///     divergence between strategies, is a finding — the byte-identity
///     contract holds for *arbitrary* monotone specs, not just the
///     built-ins.
///
/// Deterministic in Seed, like the program fuzzer.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_FUZZ_SPECFUZZ_H
#define GNT_FUZZ_SPECFUZZ_H

#include <string>
#include <vector>

namespace gnt::fuzz {

struct SpecFuzzOptions {
  unsigned Seed = 1;
  /// Stop after this many mutated specs.
  unsigned long long MaxSpecs = 200;
  /// Generated programs each accepted spec is solved on.
  unsigned ProgramsPerSpec = 3;
  /// Progress lines to stderr.
  bool Verbose = false;
};

struct SpecFuzzFinding {
  std::string Kind;   ///< "spec.lint.no-diagnostic", "spec.differential",
                      ///< or "spec.invariance".
  std::string Detail; ///< Human-readable description.
  std::string Spec;   ///< The offending spec text (the repro).
};

struct SpecFuzzReport {
  unsigned long long Tried = 0;    ///< Specs run through the oracle.
  unsigned long long Accepted = 0; ///< Specs the linter accepted.
  unsigned long long Rejected = 0; ///< Specs rejected with diagnostics.
  std::vector<SpecFuzzFinding> Findings;

  bool clean() const { return Findings.empty(); }
};

/// Runs one spec-fuzzing campaign; deterministic in Opts.Seed.
SpecFuzzReport runSpecFuzzer(const SpecFuzzOptions &Opts);

} // namespace gnt::fuzz

#endif // GNT_FUZZ_SPECFUZZ_H
