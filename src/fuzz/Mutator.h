//===- fuzz/Mutator.h - Seeded program mutations ----------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural mutations over FMini programs. The mutator parses the
/// input, edits the AST, and prints it back, so every mutant is
/// syntactically valid by construction; semantic validity (reducible
/// CFG, goto discipline) is left to the oracle's frontend, which
/// rejects bad mutants cheaply. All randomness comes from raw
/// std::mt19937 draws, so a (source, seed) pair produces the same
/// mutant on every machine — the same reproducibility contract as
/// gen/RandomProgram.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_FUZZ_MUTATOR_H
#define GNT_FUZZ_MUTATOR_H

#include <random>
#include <string>

namespace gnt::fuzz {

/// Applies 1-3 random structural mutations (insert/delete/duplicate
/// statements, wrap runs in loops or branches, rewrite subscripts and
/// loop bounds, toggle distribution, insert gotos out of loops) and
/// returns the mutant source. Returns the input unchanged only if no
/// mutation site exists; returns "" if \p Source does not parse.
std::string mutateSource(const std::string &Source, std::mt19937 &Rng);

/// Crossbreeds two programs: splices a cloned statement run of \p B
/// into \p A, importing any array declarations the run needs. Returns
/// "" if either input does not parse.
std::string crossoverSources(const std::string &A, const std::string &B,
                             std::mt19937 &Rng);

} // namespace gnt::fuzz

#endif // GNT_FUZZ_MUTATOR_H
