//===- fuzz/Fuzzer.h - Coverage-guided metamorphic fuzzer -------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-process fuzzing loop behind the `gnt-fuzz` tool. Seeds come
/// from an on-disk corpus plus gen/RandomProgram across the structure
/// buckets; each iteration mutates or crossbreeds a live-corpus parent,
/// runs the full oracle stack (fuzz/Oracle.h) over the mutant, keeps
/// mutants that reach a new structural-coverage signature, and on any
/// finding shrinks the input with the delta-debugging minimizer and
/// writes the repro (with a provenance header) into the output
/// directory. The whole loop is deterministic in --seed.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_FUZZ_FUZZER_H
#define GNT_FUZZ_FUZZER_H

#include "fuzz/Oracle.h"

#include <string>
#include <vector>

namespace gnt::fuzz {

struct FuzzOptions {
  /// Directory of seed `.fm` programs (may be empty or missing).
  std::string CorpusDir;

  /// Where minimized repros are written; empty disables writing.
  std::string OutDir;

  unsigned Seed = 1;

  /// Stop after this many oracle-checked inputs.
  unsigned long long MaxInputs = 500;

  /// Stop after this many seconds (0 = no time limit).
  double MaxSeconds = 0;

  /// Predicate-evaluation budget per minimization.
  unsigned MinimizeBudget = 1500;

  /// Stop the campaign at the first finding (CI smoke mode).
  bool StopOnFinding = false;

  OracleOptions Oracle;

  /// Progress lines to stderr.
  bool Verbose = false;
};

struct FuzzFinding {
  std::string Class;     ///< findingClass() of the first finding.
  std::string Kind;      ///< Full kind of the first finding.
  std::string Detail;
  std::string Source;    ///< The original failing input.
  std::string Minimized; ///< The shrunk repro.
  std::string Path;      ///< File the repro was written to ("" if none).
};

struct FuzzReport {
  unsigned long long Executed = 0; ///< Inputs run through the oracle.
  unsigned long long Valid = 0;    ///< Inputs the frontend accepted.
  unsigned long long Novel = 0;    ///< Inputs with a new coverage key.
  unsigned long long SeedInputs = 0;
  unsigned CorpusSize = 0;         ///< Live in-memory corpus at exit.
  std::vector<FuzzFinding> Findings; ///< One per distinct finding class.

  bool clean() const { return Findings.empty(); }
};

/// Runs one fuzzing campaign.
FuzzReport runFuzzer(const FuzzOptions &Opts);

/// Shrinks a *clean* program while preserving its coverage signature —
/// the path by which interesting fuzzer discoveries become small
/// checked-in corpus seeds. Returns the input unchanged if it is not
/// clean under the oracle.
std::string distillProgram(const std::string &Source,
                           unsigned Budget = 1500);

/// The one-line provenance header (see tests/corpus/README.md):
/// `! gnt-fuzz: <tag> seed=<seed> <coverage summary>`.
std::string provenanceHeader(const std::string &Tag, unsigned Seed,
                             const CoverageFeatures &Features);

} // namespace gnt::fuzz

#endif // GNT_FUZZ_FUZZER_H
