//===- fuzz/Minimizer.h - Delta-debugging reducer ---------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ddmin-style reducer for failing fuzzer inputs. The caller supplies
/// a predicate ("does this source still reproduce the finding class?");
/// the minimizer greedily applies structural shrink passes — chunked
/// statement removal, loop/branch unwrapping, else-arm dropping,
/// subscript simplification, distributed-array demotion, dead
/// declaration removal — re-checking the predicate after each
/// candidate, until a full sweep makes no progress or the candidate
/// budget runs out. Every candidate goes parse -> AST edit -> print, so
/// the result is always well-formed FMini.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_FUZZ_MINIMIZER_H
#define GNT_FUZZ_MINIMIZER_H

#include <functional>
#include <string>

namespace gnt::fuzz {

/// Returns true while the candidate still reproduces the failure.
using ReproPredicate = std::function<bool(const std::string &)>;

struct MinimizeStats {
  unsigned Candidates = 0; ///< Predicate evaluations spent.
  unsigned Accepted = 0;   ///< Shrink steps that stuck.
};

/// Shrinks \p Source while \p StillFails holds. \p Source itself must
/// satisfy the predicate. Deterministic: no randomness, candidates are
/// enumerated in a fixed order.
std::string minimizeSource(const std::string &Source,
                           const ReproPredicate &StillFails,
                           unsigned MaxCandidates = 3000,
                           MinimizeStats *Stats = nullptr);

} // namespace gnt::fuzz

#endif // GNT_FUZZ_MINIMIZER_H
