//===- fuzz/NetOracle.h - Socket-path differential oracle -------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network oracle layer (`gnt-fuzz --net`): replays corpus programs
/// through a live in-process NetServer socket — real connections, real
/// framing, real admission and worker scheduling — and diffs every
/// response line byte-for-byte against the serial stdio engine
/// (BatchServer with Workers=0) answering the same requests. Each
/// program is replayed under several pipeline option variants (comm,
/// PRE, sharded solver, compressed universe), and arrival order is
/// shuffled per seed across several connections, so the oracle
/// continuously re-proves the serving determinism bar: nothing between
/// the wire and the pipeline may leak scheduling, caching, or framing
/// state into payloads. Any byte of divergence is a finding with the
/// request line attached as the repro.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_FUZZ_NETORACLE_H
#define GNT_FUZZ_NETORACLE_H

#include <string>
#include <vector>

namespace gnt::fuzz {

struct NetOracleOptions {
  unsigned Seed = 1;
  /// Programs replayed; generated across the structure buckets when no
  /// corpus directory is given.
  unsigned MaxPrograms = 48;
  /// Optional directory of *.fm seed programs.
  std::string CorpusDir;
  unsigned Workers = 4;
  unsigned Connections = 4;
  bool Verbose = false;
};

struct NetOracleFinding {
  std::string Kind;    ///< "net.payload-diff", "net.missing-response", ...
  std::string Detail;  ///< What diverged, first differing bytes.
  std::string Request; ///< The request line that exposed it.
};

struct NetOracleReport {
  unsigned long long Requests = 0;
  unsigned long long Programs = 0;
  std::vector<NetOracleFinding> Findings;
  bool clean() const { return Findings.empty(); }
};

/// Runs the socket-vs-serial differential. Deterministic in Opts.Seed
/// (response payloads are order-independent; only arrival order and the
/// generated programs derive from the seed).
NetOracleReport runNetOracle(const NetOracleOptions &Opts = {});

} // namespace gnt::fuzz

#endif // GNT_FUZZ_NETORACLE_H
