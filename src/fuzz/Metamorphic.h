//===- fuzz/Metamorphic.h - Semantics-preserving transforms -----*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Metamorphic transformations: program edits that must leave the
/// observable placement semantics invariant. Each transform declares
/// which SimStats fields it promises to preserve (its invariant mask);
/// the oracle simulates the original and the variant under the same
/// SimConfig and reports a finding if a masked field differs.
///
/// Transforms are constructed so they never desynchronize the
/// simulator's branch-coin RNG stream: every condition they introduce
/// is statically evaluable (e.g. `1 <= 2`), so the two runs draw the
/// same coins in the same order.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_FUZZ_METAMORPHIC_H
#define GNT_FUZZ_METAMORPHIC_H

#include <random>
#include <string>

namespace gnt::fuzz {

enum class MetaTransform : unsigned {
  /// Insert a bare `continue` into a straight-line run — splits a
  /// FORWARD edge with a fresh empty node. Everything but latency
  /// hiding (the new node is a new anchor point) is invariant.
  SplitForwardEdge,
  /// Wrap a straight-line run R in `if (1 <= 2) then R else clone(R)`.
  /// The taken path executes the same assignments, so all
  /// communication counts are invariant; work accounting shifts by the
  /// evaluated branch itself.
  CloneBlockIfElse,
  /// Insert an assignment to a fresh *local* array. Local arrays
  /// generate no communication, so all comm counts are invariant;
  /// Steps/Work/latency shift by the extra assignment.
  InsertDeadStmt,
  /// Globally rename one distributed array. Pure alpha-renaming of the
  /// item universe: everything, including the plan's static operation
  /// counts, is invariant.
  RenameItems,
  /// Swap two adjacent unlabeled assignments touching disjoint array
  /// sets. Counts are invariant; only latency hiding may shift.
  PermuteIndependent,
};

inline constexpr unsigned NumMetaTransforms = 5;

const char *metaTransformName(MetaTransform T);

/// Which SimStats fields the transform promises to keep identical.
struct MetaInvariants {
  bool Messages = true;
  bool Volume = true;
  bool Work = true;
  bool ExposedLatency = true;
  bool Redundant = true;
  bool Wasted = true;
  bool OptimisticMisses = true;
  bool Steps = true;
  /// Also require the plan's static per-kind operation counts to match.
  bool StaticCounts = false;
};

MetaInvariants metaInvariants(MetaTransform T);

struct MetaVariant {
  bool Applied = false; ///< False: no applicable site (or no parse).
  MetaTransform Kind{};
  std::string Source; ///< The transformed program when Applied.
};

/// Applies \p T at a random applicable site of \p Source.
MetaVariant applyMetaTransform(const std::string &Source, MetaTransform T,
                               std::mt19937 &Rng);

} // namespace gnt::fuzz

#endif // GNT_FUZZ_METAMORPHIC_H
