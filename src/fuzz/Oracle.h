//===- fuzz/Oracle.h - The stacked placement oracle -------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The oracle every fuzzer input runs through. Layers, cheapest first:
///
///  1. frontend gate — a plain pipeline compile; inputs the frontend or
///     interval analysis rejects are *invalid*, not findings;
///  2. audit gate — the production pipeline with the full static audit,
///     the independent C1/C3/O1 verifier and -Werror: any diagnostic on
///     a frontend-valid input is a finding;
///  3. artifact differential — the classic per-equation evaluator, the
///     sharded solver (2 and 7 shards) and the universe-compressed
///     solver re-solve the oriented READ/WRITE problems; all 20
///     dataflow variables must be byte-identical to the production
///     arena solve (forEachGntField);
///  4. production differential — pipeline compiles at SolverShards=7
///     and at CompressUniverse=true must each produce an equal
///     resultSignature();
///  5. incremental differential — a stage cache is primed with the
///     input, a deterministic mutator edit is compiled incrementally
///     from the warm cache, and its result signature and annotation
///     must be byte-identical to a cold compile of the edit;
///  6. trace simulation — the annotated program executes under several
///     (params, branch-seed) bindings; any dynamic C1/C3 violation is a
///     finding;
///  7. strategy layer — the input re-compiles under every non-balanced
///     placement strategy (comm/Strategy.h): `lospre`, and
///     `speculative` fed a profile from a biased training execution of
///     the balanced plan. Each must pass the audit stack, simulate
///     without dynamic violations, and stay shard/compression
///     invariant; on jump-free programs the speculative plan must not
///     execute more messages than balanced under the profile-generating
///     trajectory;
///  8. metamorphic layer — each semantics-preserving transform from
///     Metamorphic.h is applied and the variant's SimStats must match
///     the original under the transform's invariant mask.
///
/// The oracle is deterministic: all internal randomness is seeded from
/// a hash of the source, so a failing input re-fails identically during
/// minimization and replay.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_FUZZ_ORACLE_H
#define GNT_FUZZ_ORACLE_H

#include "fuzz/Coverage.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gnt::fuzz {

struct OracleOptions {
  /// Layer toggles (all on by default).
  bool Differential = true;
  bool Simulate = true;
  bool Metamorphic = true;
  /// Strategy layer: `lospre` and profile-fed `speculative` compiles of
  /// the input, each gated on audit, trace simulation, invariance, and
  /// (speculative, jump-free inputs) the message-cost contract.
  /// Findings are "strategies.<name>.*".
  bool Strategies = true;
  /// Incremental differential: prime a stage cache with the input,
  /// derive an edited variant, compile the variant incrementally from
  /// the warm cache and byte-diff it against a cold compile. Findings
  /// are "differential.incremental.*".
  bool Incremental = true;

  /// Shard counts for the artifact differential.
  std::vector<unsigned> ShardCounts = {2, 7};
};

struct OracleFinding {
  /// Dot-separated failure class, e.g. "differential.classic.READ.GIVE"
  /// or "metamorphic.rename-items.Messages". The minimizer preserves
  /// the first two components while shrinking.
  std::string Kind;
  std::string Detail;
};

struct OracleOutcome {
  /// The input passed the frontend gate (parse, CFG, interval analysis,
  /// solve). Invalid inputs produce no findings.
  bool Valid = false;

  /// No audit/verifier diagnostics of *any* severity — the bar the
  /// ctest corpus replays (`--audit --werror`) hold checked-in seeds
  /// to. Weaker conservatism notes (e.g. O1 redundancy under jump
  /// poisoning) are legal on valid inputs, so this can be false while
  /// the input is finding-free.
  bool WerrorClean = false;
  std::vector<OracleFinding> Findings;

  /// Structural coverage of the input (valid inputs only).
  CoverageFeatures Features;
  std::uint64_t CoverageKey = 0;
  unsigned UniverseSize = 0;

  bool clean() const { return Valid && Findings.empty(); }
};

/// Runs the full oracle stack over \p Source.
OracleOutcome runOracle(const std::string &Source,
                        const OracleOptions &Opts = {});

/// First two dot components of a finding kind — the class the minimizer
/// must preserve ("differential.classic", "metamorphic.rename-items").
std::string findingClass(const std::string &Kind);

} // namespace gnt::fuzz

#endif // GNT_FUZZ_ORACLE_H
