//===- fuzz/Coverage.cpp - Structural coverage signature --------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Coverage.h"

#include "support/Hashing.h"
#include "support/Support.h"

#include <algorithm>

using namespace gnt;
using namespace gnt::fuzz;

namespace {

unsigned log2Bucket(unsigned long long N) {
  unsigned B = 0;
  while (N > 0) {
    ++B;
    N >>= 1;
  }
  return B; // 0 for 0, 1 for 1, 2 for 2-3, 3 for 4-7, ...
}

} // namespace

std::uint64_t CoverageFeatures::key() const {
  std::string S;
  for (unsigned B : EdgeBuckets)
    S += itostr(B) + ".";
  S += "|" + itostr(MaxIntervalDepth);
  S += "|" + itostr(UniverseBucket);
  S += "|" + itostr(LoopBucket) + "." + itostr(BranchBucket) + "." +
       itostr(GotoBucket);
  S += "|";
  S += HasElse ? 'e' : '-';
  S += HasZeroTripConst ? 'z' : '-';
  S += HasIndirect ? 'i' : '-';
  S += HasWideUniverse ? 'w' : '-';
  return fnv1a(S);
}

std::string CoverageFeatures::describe() const {
  std::string S = "edges=E" + itostr(EdgeBuckets[0]) + ".C" +
                  itostr(EdgeBuckets[1]) + ".J" + itostr(EdgeBuckets[2]) +
                  ".F" + itostr(EdgeBuckets[3]) + ".S" +
                  itostr(EdgeBuckets[4]);
  S += " depth=" + itostr(MaxIntervalDepth);
  S += " universe=" + itostr(UniverseBucket);
  S += " do=" + itostr(LoopBucket) + " if=" + itostr(BranchBucket) +
       " goto=" + itostr(GotoBucket);
  S += " flags=";
  S += HasElse ? 'e' : '-';
  S += HasZeroTripConst ? 'z' : '-';
  S += HasIndirect ? 'i' : '-';
  S += HasWideUniverse ? 'w' : '-';
  return S;
}

CoverageFeatures gnt::fuzz::coverageFeatures(const Program &P,
                                             const IntervalFlowGraph &Ifg,
                                             unsigned UniverseSize) {
  CoverageFeatures F;

  unsigned long long EdgeCounts[5] = {0, 0, 0, 0, 0};
  for (NodeId Id = 0; Id != Ifg.size(); ++Id) {
    F.MaxIntervalDepth = std::max(F.MaxIntervalDepth, Ifg.level(Id));
    for (const IfgEdge &E : Ifg.succs(Id))
      ++EdgeCounts[static_cast<unsigned>(E.Type)];
  }
  for (unsigned I = 0; I != 5; ++I)
    F.EdgeBuckets[I] = log2Bucket(EdgeCounts[I]);

  F.UniverseBucket = log2Bucket(UniverseSize);
  F.HasWideUniverse = UniverseSize > 64;

  unsigned long long Loops = 0, Branches = 0, Gotos = 0;
  forEachStmt(P.getBody(), [&](const Stmt *S) {
    switch (S->getKind()) {
    case Stmt::Kind::Do: {
      ++Loops;
      const auto *D = cast<DoStmt>(S);
      const auto *Lo = dyn_cast<IntLitExpr>(D->getLo());
      const auto *Hi = dyn_cast<IntLitExpr>(D->getHi());
      if (Lo && Hi && Hi->getValue() < Lo->getValue())
        F.HasZeroTripConst = true;
      break;
    }
    case Stmt::Kind::If: {
      ++Branches;
      F.HasElse |= cast<IfStmt>(S)->hasElse();
      break;
    }
    case Stmt::Kind::Goto:
      ++Gotos;
      break;
    default:
      break;
    }
  });
  F.LoopBucket = log2Bucket(Loops);
  F.BranchBucket = log2Bucket(Branches);
  F.GotoBucket = log2Bucket(Gotos);

  // Indirect subscript: an array reference whose subscript itself
  // references an array, e.g. x(a(i)).
  forEachStmt(P.getBody(), [&](const Stmt *S) {
    auto scanExpr = [&](const Expr *Root) {
      if (!Root)
        return;
      forEachExpr(Root, [&](const Expr *E) {
        if (const auto *A = dyn_cast<ArrayRefExpr>(E))
          forEachExpr(A->getSubscript(), [&](const Expr *Sub) {
            F.HasIndirect |= Sub->getKind() == Expr::Kind::ArrayRef;
          });
      });
    };
    switch (S->getKind()) {
    case Stmt::Kind::Assign:
      scanExpr(cast<AssignStmt>(S)->getLHS());
      scanExpr(cast<AssignStmt>(S)->getRHS());
      break;
    case Stmt::Kind::Do:
      scanExpr(cast<DoStmt>(S)->getLo());
      scanExpr(cast<DoStmt>(S)->getHi());
      break;
    case Stmt::Kind::If:
      scanExpr(cast<IfStmt>(S)->getCond());
      break;
    default:
      break;
    }
  });

  return F;
}
