//===- fuzz/Clone.h - Deep AST cloning for the fuzzer -----------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-copy helpers for FMini ASTs. The AST itself is move-only (every
/// node owns its children through unique_ptr), which is right for the
/// compiler but wrong for a fuzzer that wants to duplicate statements,
/// crossbreed two programs, and rename arrays without mutating the
/// original. Cloning takes an optional array rename map, which the
/// metamorphic rename-items transform and the crossover operator use to
/// rewrite references while copying.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_FUZZ_CLONE_H
#define GNT_FUZZ_CLONE_H

#include "ir/Ast.h"

#include <map>
#include <string>

namespace gnt::fuzz {

/// Old array name -> new array name. Names absent from the map are
/// copied unchanged.
using ArrayRenameMap = std::map<std::string, std::string>;

/// Deep copies \p E, renaming array references through \p Rename.
ExprPtr cloneExpr(const Expr *E, const ArrayRenameMap &Rename = {});

/// Deep copies \p S (including nested bodies and labels).
StmtPtr cloneStmt(const Stmt *S, const ArrayRenameMap &Rename = {});

/// Deep copies every statement of \p List.
StmtList cloneStmts(const StmtList &List, const ArrayRenameMap &Rename = {});

/// Deep copies a whole program, declarations included.
Program cloneProgram(const Program &P, const ArrayRenameMap &Rename = {});

/// Builds a program from \p Body and an explicit declaration set
/// (name -> distributed?). Program has no API to undeclare an array, so
/// transforms that drop or demote declarations rebuild through this.
Program rebuildProgram(StmtList Body,
                       const std::map<std::string, bool> &Arrays);

} // namespace gnt::fuzz

#endif // GNT_FUZZ_CLONE_H
