//===- fuzz/Metamorphic.cpp - Semantics-preserving transforms ---------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Metamorphic.h"

#include "frontend/Parser.h"
#include "fuzz/Clone.h"
#include "ir/AstBuilder.h"
#include "ir/AstPrinter.h"
#include "support/Support.h"

#include <set>

using namespace gnt;
using namespace gnt::build;
using namespace gnt::fuzz;

namespace {

unsigned pick(std::mt19937 &Rng, unsigned N) {
  return static_cast<unsigned>(Rng() % N);
}

void gatherListsFrom(StmtList &L, std::vector<StmtList *> &Out) {
  Out.push_back(&L);
  for (StmtPtr &S : L) {
    if (auto *D = dyn_cast<DoStmt>(S.get()))
      gatherListsFrom(D->getBodyRef(), Out);
    else if (auto *If = dyn_cast<IfStmt>(S.get())) {
      gatherListsFrom(If->getThenRef(), Out);
      gatherListsFrom(If->getElseRef(), Out);
    }
  }
}

std::vector<StmtList *> gatherLists(Program &P) {
  std::vector<StmtList *> Out;
  gatherListsFrom(P.getBody(), Out);
  return Out;
}

/// A random insertion position in \p L that is not directly after a
/// goto — a statement there would be unreachable and the CFG builder
/// rejects the variant.
unsigned insertPos(std::mt19937 &Rng, const StmtList &L) {
  std::vector<unsigned> Positions;
  for (unsigned I = 0; I <= L.size(); ++I)
    if (I == 0 || L[I - 1]->getKind() != Stmt::Kind::Goto)
      Positions.push_back(I);
  return Positions[pick(Rng, static_cast<unsigned>(Positions.size()))];
}

bool isStraightLine(const Stmt *S) {
  return S->getLabel() == 0 && (S->getKind() == Stmt::Kind::Assign ||
                                S->getKind() == Stmt::Kind::Continue);
}

void arrayNamesOf(const Stmt *S, std::set<std::string> &Out) {
  if (const auto *A = dyn_cast<AssignStmt>(S)) {
    for (const Expr *Root : {A->getLHS(), A->getRHS()})
      forEachExpr(Root, [&](const Expr *E) {
        if (const auto *Ref = dyn_cast<ArrayRefExpr>(E))
          Out.insert(Ref->getArray());
      });
  }
}

MetaVariant splitForwardEdge(Program &P, std::mt19937 &Rng) {
  std::vector<StmtList *> Lists = gatherLists(P);
  StmtList *L = Lists[pick(Rng, Lists.size())];
  L->insert(L->begin() + insertPos(Rng, *L), cont());
  return {true, MetaTransform::SplitForwardEdge, AstPrinter().print(P)};
}

MetaVariant cloneBlockIfElse(Program &P, std::mt19937 &Rng) {
  // Sites: maximal-start positions of straight-line runs.
  struct Site {
    StmtList *List;
    unsigned Start;
    unsigned MaxLen;
  };
  std::vector<Site> Sites;
  for (StmtList *L : gatherLists(P))
    for (unsigned I = 0; I != L->size(); ++I)
      if (isStraightLine((*L)[I].get())) {
        unsigned Len = 0;
        while (I + Len != L->size() && isStraightLine((*L)[I + Len].get()))
          ++Len;
        Sites.push_back({L, I, Len});
      }
  if (Sites.empty())
    return {};
  Site &S = Sites[pick(Rng, Sites.size())];
  unsigned Len = 1 + pick(Rng, std::min(3u, S.MaxLen));
  StmtList Then;
  for (unsigned I = S.Start; I != S.Start + Len; ++I)
    Then.push_back(std::move((*S.List)[I]));
  StmtList Else = cloneStmts(Then);
  S.List->erase(S.List->begin() + S.Start,
                S.List->begin() + S.Start + Len);
  // `1 <= 2` evaluates statically: the simulator takes the then-arm
  // without drawing a branch coin, so the RNG streams stay aligned.
  S.List->insert(S.List->begin() + S.Start,
                 ifThen(bin(BinaryExpr::Op::Le, lit(1), lit(2)),
                        std::move(Then), std::move(Else)));
  return {true, MetaTransform::CloneBlockIfElse, AstPrinter().print(P)};
}

MetaVariant insertDeadStmt(Program &P, std::mt19937 &Rng) {
  std::string Name = "fzd";
  while (P.getArrays().count(Name))
    Name += "d";
  P.declareArray(Name, false);
  std::vector<StmtList *> Lists = gatherLists(P);
  StmtList *L = Lists[pick(Rng, Lists.size())];
  L->insert(L->begin() + insertPos(Rng, *L),
            assign(aref(Name, lit(3)), lit(7)));
  return {true, MetaTransform::InsertDeadStmt, AstPrinter().print(P)};
}

MetaVariant renameItems(Program &P, std::mt19937 &Rng) {
  std::vector<std::string> Dist;
  for (const auto &[Name, Info] : P.getArrays())
    if (Info.Distributed)
      Dist.push_back(Name);
  if (Dist.empty())
    return {};
  const std::string &Old = Dist[pick(Rng, Dist.size())];
  std::string New = Old + "r";
  while (P.getArrays().count(New))
    New += "r";
  ArrayRenameMap Rename;
  Rename[Old] = New;
  Program Renamed = cloneProgram(P, Rename);
  return {true, MetaTransform::RenameItems, AstPrinter().print(Renamed)};
}

MetaVariant permuteIndependent(Program &P, std::mt19937 &Rng) {
  struct Site {
    StmtList *List;
    unsigned I;
  };
  std::vector<Site> Sites;
  for (StmtList *L : gatherLists(P))
    for (unsigned I = 0; I + 1 < L->size(); ++I) {
      Stmt *A = (*L)[I].get(), *B = (*L)[I + 1].get();
      if (A->getKind() != Stmt::Kind::Assign ||
          B->getKind() != Stmt::Kind::Assign || A->getLabel() != 0 ||
          B->getLabel() != 0)
        continue;
      std::set<std::string> NamesA, NamesB;
      arrayNamesOf(A, NamesA);
      arrayNamesOf(B, NamesB);
      bool Disjoint = true;
      for (const std::string &N : NamesA)
        Disjoint &= !NamesB.count(N);
      if (Disjoint)
        Sites.push_back({L, I});
    }
  if (Sites.empty())
    return {};
  Site &S = Sites[pick(Rng, Sites.size())];
  std::swap((*S.List)[S.I], (*S.List)[S.I + 1]);
  return {true, MetaTransform::PermuteIndependent, AstPrinter().print(P)};
}

} // namespace

const char *gnt::fuzz::metaTransformName(MetaTransform T) {
  switch (T) {
  case MetaTransform::SplitForwardEdge:
    return "split-forward-edge";
  case MetaTransform::CloneBlockIfElse:
    return "clone-block-if-else";
  case MetaTransform::InsertDeadStmt:
    return "insert-dead-stmt";
  case MetaTransform::RenameItems:
    return "rename-items";
  case MetaTransform::PermuteIndependent:
    return "permute-independent";
  }
  gntUnreachable("covered switch");
}

MetaInvariants gnt::fuzz::metaInvariants(MetaTransform T) {
  MetaInvariants M; // Everything invariant by default.
  switch (T) {
  case MetaTransform::SplitForwardEdge:
    // The new node is a fresh legal anchor point, so LAZY/EAGER ops
    // can re-anchor a step earlier or later; that shifts how much
    // latency the surrounding work hides, and nothing else.
    M.ExposedLatency = false;
    break;
  case MetaTransform::CloneBlockIfElse:
    // The executed statements are the same, but the simulator charges
    // one work step per evaluated IF, so Work/Steps shift by the new
    // branch.
    M.Work = false;
    M.Steps = false;
    M.ExposedLatency = false;
    break;
  case MetaTransform::InsertDeadStmt:
    M.Work = false;
    M.ExposedLatency = false;
    M.Steps = false;
    break;
  case MetaTransform::RenameItems:
    M.StaticCounts = true;
    break;
  case MetaTransform::PermuteIndependent:
    M.ExposedLatency = false;
    break;
  }
  return M;
}

MetaVariant gnt::fuzz::applyMetaTransform(const std::string &Source,
                                          MetaTransform T,
                                          std::mt19937 &Rng) {
  ParseResult PR = parseProgram(Source);
  if (!PR.success())
    return {};
  Program P = std::move(PR.Prog);
  switch (T) {
  case MetaTransform::SplitForwardEdge:
    return splitForwardEdge(P, Rng);
  case MetaTransform::CloneBlockIfElse:
    return cloneBlockIfElse(P, Rng);
  case MetaTransform::InsertDeadStmt:
    return insertDeadStmt(P, Rng);
  case MetaTransform::RenameItems:
    return renameItems(P, Rng);
  case MetaTransform::PermuteIndependent:
    return permuteIndependent(P, Rng);
  }
  gntUnreachable("covered switch");
}
