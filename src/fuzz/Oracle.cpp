//===- fuzz/Oracle.cpp - The stacked placement oracle -----------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "comm/Strategy.h"
#include "fuzz/Metamorphic.h"
#include "fuzz/Mutator.h"
#include "service/Pipeline.h"
#include "service/StageCache.h"
#include "support/SimdKernels.h"
#include "sim/TraceSimulator.h"
#include "support/Hashing.h"
#include "support/Support.h"

#include <cmath>
#include <random>

using namespace gnt;
using namespace gnt::fuzz;

namespace {

PipelineOptions checkedOptions(unsigned Shards = 0) {
  PipelineOptions Opts;
  Opts.Annotate = true;
  Opts.Audit = true;
  Opts.Verify = true;
  // No Werror here: the audit reports known solver conservatism (e.g.
  // O1 redundancy notes under Section 5.3 jump poisoning) as
  // warnings/notes, and those are expected on legal inputs. Genuine
  // audit or verifier *errors* are findings; distillProgram() still
  // requires full note-freedom so checked-in corpus seeds pass the
  // ctest `--audit --werror` replays.
  Opts.Werror = false;
  Opts.SolverShards = Shards;
  return Opts;
}

/// The (name, field) rows of a solver result, in forEachGntField order.
std::vector<std::pair<std::string, const std::vector<BitVector> *>>
solverFields(const GntResult &R) {
  std::vector<std::pair<std::string, const std::vector<BitVector> *>> Out;
  forEachGntField(R, [&](const char *Name, const std::vector<BitVector> &V) {
    Out.emplace_back(Name, &V);
  });
  return Out;
}

/// Byte-compares \p Got against \p Want field by field; appends one
/// finding per mismatching field.
void diffResults(const GntResult &Want, const GntResult &Got,
                 const std::string &KindPrefix,
                 std::vector<OracleFinding> &Findings) {
  auto W = solverFields(Want);
  auto G = solverFields(Got);
  for (std::size_t F = 0; F != W.size(); ++F) {
    const auto &[Name, WantV] = W[F];
    const auto *GotV = G[F].second;
    if (WantV->size() != GotV->size()) {
      Findings.push_back({KindPrefix + "." + Name, "node count mismatch"});
      continue;
    }
    for (std::size_t N = 0; N != WantV->size(); ++N)
      if (!((*WantV)[N] == (*GotV)[N])) {
        Findings.push_back({KindPrefix + "." + Name,
                            "first divergence at node " + itostr(
                                static_cast<long long>(N))});
        break;
      }
  }
}

/// The simulator bindings every input executes under. Fixed, so replay
/// and minimization re-check the exact same traces.
std::vector<SimConfig> simConfigs() {
  std::vector<SimConfig> Out;
  const long long Ns[] = {4, 9, 1};
  const unsigned Seeds[] = {1, 2, 3};
  for (unsigned I = 0; I != 3; ++I) {
    SimConfig C;
    C.Params["n"] = Ns[I];
    C.BranchSeed = Seeds[I];
    C.DefaultTrip = 4;
    Out.push_back(C);
  }
  return Out;
}

bool sameDouble(double A, double B) {
  return std::fabs(A - B) <= 1e-9 * std::max(1.0, std::fabs(A) +
                                                      std::fabs(B));
}

/// Compares two simulated executions under a transform's mask.
void diffStats(const SimStats &A, const SimStats &B, const MetaInvariants &M,
               const std::string &KindPrefix, const std::string &Where,
               std::vector<OracleFinding> &Findings) {
  auto Mismatch = [&](const char *Field, const std::string &Got,
                      const std::string &Want) {
    Findings.push_back({KindPrefix + "." + Field,
                        Where + ": " + Field + " " + Want + " -> " + Got});
  };
  if (A.ok() != B.ok())
    Mismatch("ok", B.ok() ? "ok" : B.Errors.front(),
             A.ok() ? "ok" : A.Errors.front());
  if (M.Messages && A.Messages != B.Messages)
    Mismatch("Messages", itostr(static_cast<long long>(B.Messages)),
             itostr(static_cast<long long>(A.Messages)));
  if (M.Volume && A.Volume != B.Volume)
    Mismatch("Volume", itostr(static_cast<long long>(B.Volume)),
             itostr(static_cast<long long>(A.Volume)));
  if (M.Work && !sameDouble(A.Work, B.Work))
    Mismatch("Work", itostr(static_cast<long long>(B.Work)),
             itostr(static_cast<long long>(A.Work)));
  if (M.ExposedLatency && !sameDouble(A.ExposedLatency, B.ExposedLatency))
    Mismatch("ExposedLatency",
             itostr(static_cast<long long>(B.ExposedLatency)),
             itostr(static_cast<long long>(A.ExposedLatency)));
  if (M.Redundant && A.Redundant != B.Redundant)
    Mismatch("Redundant", itostr(static_cast<long long>(B.Redundant)),
             itostr(static_cast<long long>(A.Redundant)));
  if (M.Wasted && A.Wasted != B.Wasted)
    Mismatch("Wasted", itostr(static_cast<long long>(B.Wasted)),
             itostr(static_cast<long long>(A.Wasted)));
  if (M.OptimisticMisses && A.OptimisticMisses != B.OptimisticMisses)
    Mismatch("OptimisticMisses",
             itostr(static_cast<long long>(B.OptimisticMisses)),
             itostr(static_cast<long long>(A.OptimisticMisses)));
  if (M.Steps && A.Steps != B.Steps)
    Mismatch("Steps", itostr(static_cast<long long>(B.Steps)),
             itostr(static_cast<long long>(A.Steps)));
}

} // namespace

std::string gnt::fuzz::findingClass(const std::string &Kind) {
  std::size_t First = Kind.find('.');
  if (First == std::string::npos)
    return Kind;
  std::size_t Second = Kind.find('.', First + 1);
  return Kind.substr(0, Second);
}

OracleOutcome gnt::fuzz::runOracle(const std::string &Source,
                                   const OracleOptions &Opts) {
  OracleOutcome Out;

  // Layers 1+2: the production pipeline with the full audit stack.
  PipelineResult R = compilePipeline(Source, checkedOptions());
  if (!R.ok()) {
    // Distinguish "the frontend rejects this input" (invalid, expected
    // for aggressive mutants) from "the audit flags a solver-accepted
    // program" (a finding).
    PipelineResult Plain = compilePipeline(Source, PipelineOptions{});
    if (!Plain.ok() || !Plain.Plan)
      return Out; // Invalid input; no signal.
    Out.Valid = true;
    Out.Findings.push_back({"audit.error", R.Diags.renderText()});
    if (Plain.Ifg) {
      Out.UniverseSize = std::max(Plain.Plan->ReadProblem.UniverseSize,
                                  Plain.Plan->WriteProblem.UniverseSize);
      Out.Features =
          coverageFeatures(*Plain.Prog, *Plain.Ifg, Out.UniverseSize);
      Out.CoverageKey = Out.Features.key();
    }
    return Out;
  }
  if (!R.Plan || !R.Ifg)
    return Out; // Comm mode always produces a plan; be defensive.
  Out.Valid = true;
  Out.WerrorClean = R.Diags.empty();

  Out.UniverseSize = std::max(R.Plan->ReadProblem.UniverseSize,
                              R.Plan->WriteProblem.UniverseSize);
  Out.Features = coverageFeatures(*R.Prog, *R.Ifg, Out.UniverseSize);
  Out.CoverageKey = Out.Features.key();

  // Layer 3: artifact-level differential — classic and sharded
  // re-solves of the oriented problems must match the arena solve on
  // all 20 dataflow variables.
  if (Opts.Differential) {
    auto DiffRun = [&](const std::optional<GntRun> &Run,
                       const char *Problem) {
      if (!Run)
        return;
      GntResult Classic =
          solveGiveNTakeClassic(Run->OrientedIfg, Run->OrientedProblem);
      diffResults(Classic, Run->Result,
                  std::string("differential.classic.") + Problem,
                  Out.Findings);
      for (unsigned S : Opts.ShardCounts) {
        GntResult Sharded =
            solveGiveNTakeSharded(Run->OrientedIfg, Run->OrientedProblem, S);
        diffResults(Classic, Sharded,
                    "differential.shards" + itostr(S) + "." + Problem,
                    Out.Findings);
      }
      // The universe-compressed solve must expand back to the exact
      // same 20 variables (ItemClasses partition + expansion are both
      // on trial here, against the classic oracle).
      GntResult Compressed =
          solveGiveNTakeCompressed(Run->OrientedIfg, Run->OrientedProblem);
      diffResults(Classic, Compressed,
                  std::string("differential.compressed.") + Problem,
                  Out.Findings);
      // Every SIMD kernel variant this machine can run must produce the
      // classic result bit-for-bit — the variants share nothing but the
      // equations, so a lane-width or tail-handling bug in any one of
      // them shows up here as its own finding kind.
      for (const SolverKernels *K : availableSolverKernels()) {
        detail::ScopedKernelOverride Force(*K);
        GntResult Solved =
            solveGiveNTake(Run->OrientedIfg, Run->OrientedProblem);
        diffResults(Classic, Solved,
                    std::string("differential.kernel-") + K->Name + "." +
                        Problem,
                    Out.Findings);
      }
    };
    DiffRun(R.Plan->ReadRun, "READ");
    DiffRun(R.Plan->WriteRun, "WRITE");

    // Layer 4: the production path itself, re-run under each solver
    // strategy knob, must reach an identical outcome signature.
    PipelineResult Sharded = compilePipeline(Source, checkedOptions(7));
    if (resultSignature(R) != resultSignature(Sharded))
      Out.Findings.push_back(
          {"differential.pipeline.shards7",
           "resultSignature differs between serial and 7-shard compiles"});
    PipelineOptions CompressOpts = checkedOptions();
    CompressOpts.CompressUniverse = true;
    PipelineResult Compressed = compilePipeline(Source, CompressOpts);
    if (resultSignature(R) != resultSignature(Compressed))
      Out.Findings.push_back(
          {"differential.pipeline.compressed",
           "resultSignature differs between uncompressed and "
           "universe-compressed compiles"});
  }

  // Layer 5: incremental differential. The stage cache is warm with the
  // input's artifacts and solve memos; an edited variant compiled from
  // that history must be byte-identical to compiling it cold. The edit
  // is a deterministic mutator draw, so replay and minimization re-check
  // the same pair. Both compiles run without the audit stack — the
  // contract under test is the incremental solver's, and audit findings
  // on the variant would surface as their own class on the variant
  // itself.
  if (Opts.Incremental) {
    std::mt19937 EditRng(
        static_cast<std::uint32_t>(fnv1a(Source) ^ 0x9e3779b9u));
    std::string Edited = mutateSource(Source, EditRng);
    if (!Edited.empty() && Edited != Source) {
      PipelineOptions IncOpts;
      IncOpts.Annotate = true;
      IncOpts.Incremental = true;
      StageCache Warm;
      (void)Pipeline(IncOpts).compile(Source, &Warm); // Prime.
      PipelineResult IncR = Pipeline(IncOpts).compile(Edited, &Warm);
      PipelineOptions ColdOpts = IncOpts;
      ColdOpts.Incremental = false;
      PipelineResult ColdR = Pipeline(ColdOpts).compile(Edited);
      if (resultSignature(IncR) != resultSignature(ColdR))
        Out.Findings.push_back(
            {"differential.incremental.signature",
             "resultSignature differs between warm-cache incremental and "
             "cold compiles of the edited variant"});
      else if (IncR.Annotated != ColdR.Annotated)
        Out.Findings.push_back(
            {"differential.incremental.annotated",
             "annotated output differs between warm-cache incremental "
             "and cold compiles of the edited variant"});
    }
  }

  // Layer 6: dynamic C1/C3 on concrete traces.
  std::vector<SimStats> BaseStats;
  if (Opts.Simulate || Opts.Metamorphic)
    for (const SimConfig &C : simConfigs())
      BaseStats.push_back(simulate(*R.Prog, *R.Plan, C));
  if (Opts.Simulate)
    for (std::size_t I = 0; I != BaseStats.size(); ++I)
      for (const std::string &E : BaseStats[I].Errors)
        Out.Findings.push_back(
            {"simulator.trace", "config " + itostr(static_cast<long long>(I)) +
                                    ": " + E});

  // Layer 7: placement strategies. Only on inputs clean so far, for the
  // same anti-cascade reason as the metamorphic layer: each non-balanced
  // strategy re-compiles the input through the audit stack, simulates
  // under the shared configs, and must be shard/compression invariant.
  // Speculation trains on a biased execution of the balanced plan; on
  // jump-free inputs its adoption gate (strict expected-cost win, exact
  // under the anchor-frequency model) makes "no more messages than
  // balanced on the training trajectory" a hard contract.
  if (Opts.Strategies && Out.Findings.empty()) {
    SimConfig TrainCfg;
    TrainCfg.Params["n"] = 9;
    TrainCfg.BranchSeed = 1;
    TrainCfg.BranchTrueProb = 0.85;
    TrainCfg.DefaultTrip = 4;
    SimStats Train = simulate(*R.Prog, *R.Plan, TrainCfg);
    for (PlacementStrategy Strat :
         {PlacementStrategy::Speculative, PlacementStrategy::Lospre}) {
      std::string Prefix =
          std::string("strategies.") + placementStrategyName(Strat);
      PipelineOptions SOpts = checkedOptions();
      SOpts.Strategy = Strat;
      if (Strat == PlacementStrategy::Speculative) {
        if (!Train.ok())
          continue; // The balanced trace failed its own layer already.
        SOpts.Profile = renderExecProfile(Train.Profile);
      }
      PipelineResult SR = compilePipeline(Source, SOpts);
      if (!SR.ok() || !SR.Plan) {
        Out.Findings.push_back({Prefix + ".audit", SR.Diags.renderText()});
        continue;
      }
      PipelineOptions InvOpts = SOpts;
      InvOpts.SolverShards = 7;
      InvOpts.CompressUniverse = true;
      PipelineResult InvR = compilePipeline(Source, InvOpts);
      if (resultSignature(SR) != resultSignature(InvR))
        Out.Findings.push_back(
            {Prefix + ".invariance",
             "resultSignature differs between the serial and the "
             "7-shard universe-compressed compile"});
      std::vector<SimConfig> Configs = simConfigs();
      for (std::size_t I = 0; I != Configs.size(); ++I) {
        SimStats SS = simulate(*SR.Prog, *SR.Plan, Configs[I]);
        for (const std::string &E : SS.Errors)
          Out.Findings.push_back(
              {Prefix + ".trace",
               "config " + itostr(static_cast<long long>(I)) + ": " + E});
      }
      if (Strat == PlacementStrategy::Speculative &&
          !R.Ifg->hasJumpEdges()) {
        SimStats SpecSim = simulate(*SR.Prog, *SR.Plan, TrainCfg);
        if (SpecSim.ok() && SpecSim.Messages > Train.Messages)
          Out.Findings.push_back(
              {Prefix + ".cost-regression",
               "speculative plan executed " +
                   itostr(static_cast<long long>(SpecSim.Messages)) +
                   " messages vs balanced " +
                   itostr(static_cast<long long>(Train.Messages)) +
                   " under its own training profile"});
      }
    }
  }

  // Layer 8: metamorphic variants. Only on inputs that are clean so
  // far — a real defect should surface as its primary class, not as a
  // cascade of derived mismatches.
  if (Opts.Metamorphic && Out.Findings.empty()) {
    std::mt19937 Rng(static_cast<std::uint32_t>(fnv1a(Source)));
    for (unsigned T = 0; T != NumMetaTransforms; ++T) {
      auto Transform = static_cast<MetaTransform>(T);
      MetaVariant V = applyMetaTransform(Source, Transform, Rng);
      if (!V.Applied)
        continue;
      std::string Prefix =
          std::string("metamorphic.") + metaTransformName(Transform);
      PipelineResult VR = compilePipeline(V.Source, checkedOptions());
      if (!VR.ok() || !VR.Plan) {
        Out.Findings.push_back(
            {Prefix + ".reject",
             "variant rejected: " + VR.Diags.renderText()});
        continue;
      }
      MetaInvariants Mask = metaInvariants(Transform);
      if (Mask.StaticCounts &&
          R.Plan->staticCounts() != VR.Plan->staticCounts())
        Out.Findings.push_back(
            {Prefix + ".StaticCounts", "static placement counts differ"});
      std::vector<SimConfig> Configs = simConfigs();
      for (std::size_t I = 0; I != Configs.size(); ++I) {
        SimStats VS = simulate(*VR.Prog, *VR.Plan, Configs[I]);
        diffStats(BaseStats[I], VS, Mask, Prefix,
                  "config " + itostr(static_cast<long long>(I)),
                  Out.Findings);
      }
    }
  }

  return Out;
}
