//===- fuzz/Clone.cpp - Deep AST cloning for the fuzzer ---------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Clone.h"

#include "support/Support.h"

using namespace gnt;
using namespace gnt::fuzz;

ExprPtr gnt::fuzz::cloneExpr(const Expr *E, const ArrayRenameMap &Rename) {
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    return std::make_unique<IntLitExpr>(cast<IntLitExpr>(E)->getValue(),
                                        E->getLoc());
  case Expr::Kind::Var:
    return std::make_unique<VarExpr>(cast<VarExpr>(E)->getName(), E->getLoc());
  case Expr::Kind::ArrayRef: {
    const auto *A = cast<ArrayRefExpr>(E);
    std::string Name = A->getArray();
    if (auto It = Rename.find(Name); It != Rename.end())
      Name = It->second;
    return std::make_unique<ArrayRefExpr>(
        std::move(Name), cloneExpr(A->getSubscript(), Rename), E->getLoc());
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return std::make_unique<BinaryExpr>(B->getOp(),
                                        cloneExpr(B->getLHS(), Rename),
                                        cloneExpr(B->getRHS(), Rename),
                                        E->getLoc());
  }
  case Expr::Kind::Unary:
    return std::make_unique<UnaryExpr>(
        cloneExpr(cast<UnaryExpr>(E)->getOperand(), Rename), E->getLoc());
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    std::vector<ExprPtr> Args;
    Args.reserve(C->getArgs().size());
    for (const ExprPtr &A : C->getArgs())
      Args.push_back(cloneExpr(A.get(), Rename));
    return std::make_unique<CallExpr>(C->getCallee(), std::move(Args),
                                      E->getLoc());
  }
  }
  gntUnreachable("covered switch");
}

StmtPtr gnt::fuzz::cloneStmt(const Stmt *S, const ArrayRenameMap &Rename) {
  StmtPtr Out;
  switch (S->getKind()) {
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    Out = std::make_unique<AssignStmt>(cloneExpr(A->getLHS(), Rename),
                                       cloneExpr(A->getRHS(), Rename),
                                       S->getLoc());
    break;
  }
  case Stmt::Kind::Do: {
    const auto *D = cast<DoStmt>(S);
    Out = std::make_unique<DoStmt>(D->getIndexVar(),
                                   cloneExpr(D->getLo(), Rename),
                                   cloneExpr(D->getHi(), Rename),
                                   cloneStmts(D->getBody(), Rename),
                                   S->getLoc());
    break;
  }
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    Out = std::make_unique<IfStmt>(cloneExpr(If->getCond(), Rename),
                                   cloneStmts(If->getThen(), Rename),
                                   cloneStmts(If->getElse(), Rename),
                                   S->getLoc());
    break;
  }
  case Stmt::Kind::Goto:
    Out = std::make_unique<GotoStmt>(cast<GotoStmt>(S)->getTarget(),
                                     S->getLoc());
    break;
  case Stmt::Kind::Continue:
    Out = std::make_unique<ContinueStmt>(S->getLoc());
    break;
  }
  Out->setLabel(S->getLabel());
  return Out;
}

StmtList gnt::fuzz::cloneStmts(const StmtList &List,
                               const ArrayRenameMap &Rename) {
  StmtList Out;
  Out.reserve(List.size());
  for (const StmtPtr &S : List)
    Out.push_back(cloneStmt(S.get(), Rename));
  return Out;
}

Program gnt::fuzz::cloneProgram(const Program &P,
                                const ArrayRenameMap &Rename) {
  Program Out;
  for (const auto &[Name, Info] : P.getArrays()) {
    std::string N = Name;
    if (auto It = Rename.find(N); It != Rename.end())
      N = It->second;
    Out.declareArray(N, Info.Distributed);
  }
  Out.getBody() = cloneStmts(P.getBody(), Rename);
  return Out;
}

Program gnt::fuzz::rebuildProgram(StmtList Body,
                                  const std::map<std::string, bool> &Arrays) {
  Program Out;
  for (const auto &[Name, Distributed] : Arrays)
    Out.declareArray(Name, Distributed);
  Out.getBody() = std::move(Body);
  return Out;
}
