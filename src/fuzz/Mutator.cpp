//===- fuzz/Mutator.cpp - Seeded program mutations --------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Mutator.h"

#include "frontend/Parser.h"
#include "fuzz/Clone.h"
#include "ir/AstBuilder.h"
#include "ir/AstPrinter.h"
#include "support/Support.h"

#include <set>

using namespace gnt;
using namespace gnt::build;
using namespace gnt::fuzz;

namespace {

unsigned pick(std::mt19937 &Rng, unsigned N) {
  return static_cast<unsigned>(Rng() % N);
}

bool chance(std::mt19937 &Rng, double P) {
  // Portable dyadic draw, same scheme as gen/RandomProgram.
  return (Rng() >> 8) * (1.0 / 16777216.0) < P;
}

/// A statement list reachable from the program body, with the loop
/// index variables in scope at its head.
struct ListCtx {
  StmtList *List = nullptr;
  std::vector<std::string> LoopVars;
  unsigned Depth = 0;
};

void gatherListsFrom(StmtList &L, std::vector<std::string> &LoopVars,
                     unsigned Depth, std::vector<ListCtx> &Out) {
  Out.push_back({&L, LoopVars, Depth});
  for (StmtPtr &S : L) {
    if (auto *D = dyn_cast<DoStmt>(S.get())) {
      LoopVars.push_back(D->getIndexVar());
      gatherListsFrom(D->getBodyRef(), LoopVars, Depth + 1, Out);
      LoopVars.pop_back();
    } else if (auto *If = dyn_cast<IfStmt>(S.get())) {
      gatherListsFrom(If->getThenRef(), LoopVars, Depth + 1, Out);
      gatherListsFrom(If->getElseRef(), LoopVars, Depth + 1, Out);
    }
  }
}

std::vector<ListCtx> gatherLists(Program &P) {
  std::vector<ListCtx> Out;
  std::vector<std::string> LoopVars;
  gatherListsFrom(P.getBody(), LoopVars, 0, Out);
  return Out;
}

void stripLabels(StmtList &L) {
  for (StmtPtr &S : L) {
    S->setLabel(0);
    if (auto *D = dyn_cast<DoStmt>(S.get()))
      stripLabels(D->getBodyRef());
    else if (auto *If = dyn_cast<IfStmt>(S.get())) {
      stripLabels(If->getThenRef());
      stripLabels(If->getElseRef());
    }
  }
}

/// Replaces every GotoStmt in \p L (recursively) with a continue, so a
/// run cloned into a foreign program cannot dangle on a missing label.
void neutralizeGotos(StmtList &L) {
  for (StmtPtr &S : L) {
    if (S->getKind() == Stmt::Kind::Goto) {
      unsigned Label = S->getLabel();
      S = cont();
      S->setLabel(Label);
    } else if (auto *D = dyn_cast<DoStmt>(S.get()))
      neutralizeGotos(D->getBodyRef());
    else if (auto *If = dyn_cast<IfStmt>(S.get())) {
      neutralizeGotos(If->getThenRef());
      neutralizeGotos(If->getElseRef());
    }
  }
}

std::vector<std::string> arraysWhere(const Program &P, bool Distributed) {
  std::vector<std::string> Out;
  for (const auto &[Name, Info] : P.getArrays())
    if (Info.Distributed == Distributed)
      Out.push_back(Name);
  return Out;
}

/// A subscript valid under \p Ctx: a constant, a parameter offset, or a
/// loop-index form when an index variable is in scope.
ExprPtr randomSubscript(std::mt19937 &Rng, const ListCtx &Ctx,
                        const std::vector<std::string> &IndexArrays) {
  bool HasIdx = !Ctx.LoopVars.empty();
  switch (pick(Rng, HasIdx ? 5u : 2u)) {
  case 0:
    return lit(1 + pick(Rng, 8));
  case 1:
    return sub(var("n"), lit(pick(Rng, 4)));
  case 2:
    return add(var(Ctx.LoopVars[pick(Rng, Ctx.LoopVars.size())]),
               lit(pick(Rng, 10)));
  case 3:
    return bin(BinaryExpr::Op::Mul, lit(2),
               var(Ctx.LoopVars[pick(Rng, Ctx.LoopVars.size())]));
  default:
    if (!IndexArrays.empty())
      return aref(IndexArrays[pick(Rng, IndexArrays.size())],
                  var(Ctx.LoopVars[pick(Rng, Ctx.LoopVars.size())]));
    return lit(1 + pick(Rng, 8));
  }
}

/// A fresh DO index name not used by any loop in \p P.
std::string freshIndexVar(const Program &P) {
  std::set<std::string> Used;
  forEachStmt(P.getBody(), [&](const Stmt *S) {
    if (const auto *D = dyn_cast<DoStmt>(S))
      Used.insert(D->getIndexVar());
  });
  for (unsigned K = 0;; ++K) {
    std::string Name = "m" + itostr(K);
    if (!Used.count(Name))
      return Name;
  }
}

unsigned countStmts(const Program &P) {
  unsigned N = 0;
  forEachStmt(P.getBody(), [&](const Stmt *) { ++N; });
  return N;
}

/// One mutation attempt; returns false if the chosen operator had no
/// applicable site (the caller redraws).
bool mutateOnce(Program &P, std::mt19937 &Rng) {
  std::vector<std::string> Dist = arraysWhere(P, true);
  std::vector<std::string> Local = arraysWhere(P, false);
  std::vector<ListCtx> Lists = gatherLists(P);

  switch (pick(Rng, 9)) {
  case 0: { // Insert a read or a definition of a distributed array.
    if (Dist.empty())
      return false;
    ListCtx &Ctx = Lists[pick(Rng, Lists.size())];
    ExprPtr Rhs = chance(Rng, 0.7)
                      ? aref(Dist[pick(Rng, Dist.size())],
                             randomSubscript(Rng, Ctx, Local))
                      : static_cast<ExprPtr>(lit(pick(Rng, 100)));
    ExprPtr Lhs = chance(Rng, 0.35)
                      ? aref(Dist[pick(Rng, Dist.size())],
                             randomSubscript(Rng, Ctx, Local))
                      : aref(Local.empty() ? "w" : Local[pick(Rng,
                                                              Local.size())],
                             randomSubscript(Rng, Ctx, Local));
    if (Local.empty())
      P.declareArray("w", false);
    Ctx.List->insert(Ctx.List->begin() + pick(Rng, Ctx.List->size() + 1),
                     assign(std::move(Lhs), std::move(Rhs)));
    return true;
  }
  case 1: { // Delete an unlabeled statement (keep the program nonempty).
    if (countStmts(P) < 4)
      return false;
    ListCtx &Ctx = Lists[pick(Rng, Lists.size())];
    if (Ctx.List->empty())
      return false;
    unsigned I = pick(Rng, Ctx.List->size());
    if ((*Ctx.List)[I]->getLabel() != 0)
      return false;
    Ctx.List->erase(Ctx.List->begin() + I);
    return true;
  }
  case 2: { // Duplicate a statement (labels stripped from the copy).
    ListCtx &Ctx = Lists[pick(Rng, Lists.size())];
    if (Ctx.List->empty())
      return false;
    unsigned I = pick(Rng, Ctx.List->size());
    StmtPtr Copy = cloneStmt((*Ctx.List)[I].get());
    StmtList One;
    One.push_back(std::move(Copy));
    stripLabels(One);
    Ctx.List->insert(Ctx.List->begin() + I + 1, std::move(One.front()));
    return true;
  }
  case 3: { // Wrap an unlabeled run in a fresh DO loop.
    ListCtx &Ctx = Lists[pick(Rng, Lists.size())];
    if (Ctx.List->empty() || Ctx.Depth >= 6)
      return false;
    unsigned Start = pick(Rng, Ctx.List->size());
    unsigned Len = 1 + pick(Rng, std::min<std::size_t>(
                                     3, Ctx.List->size() - Start));
    for (unsigned I = Start; I != Start + Len; ++I)
      if ((*Ctx.List)[I]->getLabel() != 0)
        return false;
    StmtList Body;
    for (unsigned I = Start; I != Start + Len; ++I)
      Body.push_back(std::move((*Ctx.List)[I]));
    Ctx.List->erase(Ctx.List->begin() + Start,
                    Ctx.List->begin() + Start + Len);
    ExprPtr Hi = chance(Rng, 0.4)
                     ? static_cast<ExprPtr>(lit(chance(Rng, 0.3)
                                                    ? 0
                                                    : 1 + pick(Rng, 5)))
                     : static_cast<ExprPtr>(var("n"));
    Ctx.List->insert(Ctx.List->begin() + Start,
                     doLoop(freshIndexVar(P), lit(1), std::move(Hi),
                            std::move(Body)));
    return true;
  }
  case 4: { // Wrap an unlabeled run in an opaque IF.
    ListCtx &Ctx = Lists[pick(Rng, Lists.size())];
    if (Ctx.List->empty() || Ctx.Depth >= 6)
      return false;
    unsigned Start = pick(Rng, Ctx.List->size());
    unsigned Len = 1 + pick(Rng, std::min<std::size_t>(
                                     2, Ctx.List->size() - Start));
    for (unsigned I = Start; I != Start + Len; ++I)
      if ((*Ctx.List)[I]->getLabel() != 0)
        return false;
    StmtList Then;
    for (unsigned I = Start; I != Start + Len; ++I)
      Then.push_back(std::move((*Ctx.List)[I]));
    Ctx.List->erase(Ctx.List->begin() + Start,
                    Ctx.List->begin() + Start + Len);
    std::vector<ExprPtr> Args;
    Args.push_back(Ctx.LoopVars.empty()
                       ? var("n")
                       : var(Ctx.LoopVars[pick(Rng, Ctx.LoopVars.size())]));
    Ctx.List->insert(Ctx.List->begin() + Start,
                     ifThen(call("t", std::move(Args)), std::move(Then)));
    return true;
  }
  case 5: { // Replace a subscript.
    struct Site {
      ArrayRefExpr *Ref;
      unsigned ListIdx;
    };
    std::vector<Site> Sites;
    for (unsigned LI = 0; LI != Lists.size(); ++LI)
      for (StmtPtr &S : *Lists[LI].List)
        if (auto *A = dyn_cast<AssignStmt>(S.get())) {
          std::function<void(Expr *)> Scan = [&](Expr *E) {
            if (auto *Ref = dyn_cast<ArrayRefExpr>(E))
              Sites.push_back({Ref, LI});
            if (auto *B = dyn_cast<BinaryExpr>(E)) {
              Scan(B->getLHSPtr().get());
              Scan(B->getRHSPtr().get());
            }
          };
          Scan(A->getLHSPtr().get());
          Scan(A->getRHSPtr().get());
        }
    if (Sites.empty())
      return false;
    Site &S = Sites[pick(Rng, Sites.size())];
    S.Ref->getSubscriptPtr() =
        randomSubscript(Rng, Lists[S.ListIdx], Local);
    return true;
  }
  case 6: { // Rewrite a loop bound (possibly to zero-trip).
    std::vector<DoStmt *> Loops;
    for (ListCtx &Ctx : Lists)
      for (StmtPtr &S : *Ctx.List)
        if (auto *D = dyn_cast<DoStmt>(S.get()))
          Loops.push_back(D);
    if (Loops.empty())
      return false;
    DoStmt *D = Loops[pick(Rng, Loops.size())];
    switch (pick(Rng, 3)) {
    case 0:
      D->getHiPtr() = lit(0); // Guaranteed zero-trip.
      break;
    case 1:
      D->getHiPtr() = lit(1 + pick(Rng, 6));
      break;
    default:
      D->getHiPtr() = var("n");
      break;
    }
    return true;
  }
  case 7: { // Toggle an array's distribution (keep >= 1 distributed).
    std::vector<std::string> Names;
    for (const auto &[Name, Info] : P.getArrays())
      Names.push_back(Name);
    if (Names.empty())
      return false;
    const std::string &Name = Names[pick(Rng, Names.size())];
    bool WasDist = P.isDistributed(Name);
    if (WasDist && Dist.size() <= 1)
      return false;
    std::map<std::string, bool> Decls;
    for (const auto &[N, Info] : P.getArrays())
      Decls[N] = Info.Distributed;
    Decls[Name] = !WasDist;
    P = rebuildProgram(std::move(P.getBody()), Decls);
    return true;
  }
  default: { // Insert a conditional goto out of a loop.
    // Site: a DO at position i of some list with a labeled statement at
    // j > i in the same list — the goto lands after the loop, which the
    // CFG builder accepts as a forward jump out of the nest.
    struct GotoSite {
      DoStmt *Loop;
      unsigned Label;
    };
    std::vector<GotoSite> Sites;
    for (ListCtx &Ctx : Lists)
      for (std::size_t I = 0; I != Ctx.List->size(); ++I)
        if (auto *D = dyn_cast<DoStmt>((*Ctx.List)[I].get()))
          for (std::size_t J = I + 1; J != Ctx.List->size(); ++J)
            if ((*Ctx.List)[J]->getLabel() != 0)
              Sites.push_back({D, (*Ctx.List)[J]->getLabel()});
    if (Sites.empty())
      return false;
    GotoSite &Site = Sites[pick(Rng, Sites.size())];
    std::vector<ExprPtr> Args;
    Args.push_back(var(Site.Loop->getIndexVar()));
    StmtList &Body = Site.Loop->getBodyRef();
    Body.insert(Body.begin() + pick(Rng, Body.size() + 1),
                ifGoto(call("t", std::move(Args)), Site.Label));
    return true;
  }
  }
}

} // namespace

std::string gnt::fuzz::mutateSource(const std::string &Source,
                                    std::mt19937 &Rng) {
  ParseResult PR = parseProgram(Source);
  if (!PR.success())
    return "";
  Program P = std::move(PR.Prog);
  unsigned Wanted = 1 + pick(Rng, 3);
  unsigned Applied = 0;
  for (unsigned Attempt = 0; Attempt != 24 && Applied != Wanted; ++Attempt)
    Applied += mutateOnce(P, Rng);
  return AstPrinter().print(P);
}

std::string gnt::fuzz::crossoverSources(const std::string &A,
                                        const std::string &B,
                                        std::mt19937 &Rng) {
  ParseResult PA = parseProgram(A);
  ParseResult PB = parseProgram(B);
  if (!PA.success() || !PB.success())
    return "";
  Program &Dst = PA.Prog;
  Program &Src = PB.Prog;

  std::vector<ListCtx> SrcLists = gatherLists(Src);
  ListCtx &From = SrcLists[pick(Rng, SrcLists.size())];
  if (From.List->empty())
    return AstPrinter().print(Dst);
  unsigned Start = pick(Rng, From.List->size());
  unsigned Len = 1 + pick(Rng, std::min<std::size_t>(
                                   3, From.List->size() - Start));
  StmtList Run;
  for (unsigned I = Start; I != Start + Len; ++I)
    Run.push_back(cloneStmt((*From.List)[I].get()));
  stripLabels(Run);
  neutralizeGotos(Run);

  // Import declarations the spliced run relies on, with the donor's
  // distribution flags.
  forEachStmt(Run, [&](const Stmt *S) {
    auto Import = [&](const Expr *Root) {
      if (!Root)
        return;
      forEachExpr(Root, [&](const Expr *E) {
        if (const auto *Ref = dyn_cast<ArrayRefExpr>(E))
          if (!Dst.getArrays().count(Ref->getArray()))
            Dst.declareArray(Ref->getArray(),
                             Src.isDistributed(Ref->getArray()));
      });
    };
    if (const auto *As = dyn_cast<AssignStmt>(S)) {
      Import(As->getLHS());
      Import(As->getRHS());
    } else if (const auto *D = dyn_cast<DoStmt>(S)) {
      Import(D->getLo());
      Import(D->getHi());
    } else if (const auto *If = dyn_cast<IfStmt>(S)) {
      Import(If->getCond());
    }
  });

  std::vector<ListCtx> DstLists = gatherLists(Dst);
  ListCtx &To = DstLists[pick(Rng, DstLists.size())];
  unsigned Pos = pick(Rng, To.List->size() + 1);
  for (unsigned I = 0; I != Run.size(); ++I)
    To.List->insert(To.List->begin() + Pos + I, std::move(Run[I]));
  return AstPrinter().print(Dst);
}
