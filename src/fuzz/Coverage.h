//===- fuzz/Coverage.h - Structural coverage signature ----------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cheap structural coverage signal that guides the mutation
/// fuzzer. Instead of instrumenting the solver, we bucket the shape of
/// the *problem* the solver is handed: which interval-flow edge classes
/// appear (and how many, log-bucketed), how deep the interval nesting
/// goes, how wide the item universe is, and which syntactic features
/// (gotos, else arms, zero-trip constant loops, indirect subscripts)
/// occur. Two inputs with the same signature exercise the same solver
/// paths to a first approximation; a mutant with a new signature joins
/// the live corpus.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_FUZZ_COVERAGE_H
#define GNT_FUZZ_COVERAGE_H

#include "interval/IntervalFlowGraph.h"
#include "ir/Ast.h"

#include <cstdint>
#include <string>

namespace gnt::fuzz {

/// The individual coverage features, exposed for tests and the
/// distiller's human-readable provenance headers.
struct CoverageFeatures {
  /// Log2 bucket of the edge count per EdgeType (Entry, Cycle, Jump,
  /// Forward, Synthetic).
  unsigned EdgeBuckets[5] = {0, 0, 0, 0, 0};
  unsigned MaxIntervalDepth = 0;
  /// Log2 bucket of the item universe width.
  unsigned UniverseBucket = 0;
  unsigned LoopBucket = 0;    ///< Log2 bucket of DO count.
  unsigned BranchBucket = 0;  ///< Log2 bucket of IF count.
  unsigned GotoBucket = 0;    ///< Log2 bucket of GOTO count.
  bool HasElse = false;
  bool HasZeroTripConst = false; ///< A constant-bound loop with hi < lo.
  bool HasIndirect = false;      ///< An indirect subscript a(i) inside x(...).
  bool HasWideUniverse = false;  ///< Universe spills past one 64-bit word.

  /// Stable FNV hash of the whole tuple.
  std::uint64_t key() const;

  /// "edges=E2.C1.J0.F3.S0 depth=2 universe=3 ..." for logs and
  /// provenance headers.
  std::string describe() const;
};

/// Extracts the signature of one frontend-valid input.
CoverageFeatures coverageFeatures(const Program &P,
                                  const IntervalFlowGraph &Ifg,
                                  unsigned UniverseSize);

} // namespace gnt::fuzz

#endif // GNT_FUZZ_COVERAGE_H
