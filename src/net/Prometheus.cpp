//===- net/Prometheus.cpp - /metrics text exposition ------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/Prometheus.h"

#include <cstdio>

using namespace gnt;
using namespace gnt::net;

namespace {

class Text {
public:
  void help(const char *Name, const char *Help, const char *Type) {
    Out += "# HELP ";
    Out += Name;
    Out += ' ';
    Out += Help;
    Out += "\n# TYPE ";
    Out += Name;
    Out += ' ';
    Out += Type;
    Out += '\n';
  }

  void sample(const char *Name, const char *Labels, double Value) {
    char Buf[160];
    // %.17g round-trips doubles; counters render as plain integers.
    if (Value == static_cast<double>(static_cast<long long>(Value)))
      std::snprintf(Buf, sizeof(Buf), "%s%s %lld\n", Name, Labels,
                    static_cast<long long>(Value));
    else
      std::snprintf(Buf, sizeof(Buf), "%s%s %.6f\n", Name, Labels, Value);
    Out += Buf;
  }

  void counter(const char *Name, const char *Help, std::uint64_t Value) {
    help(Name, Help, "counter");
    sample(Name, "", static_cast<double>(Value));
  }

  void gauge(const char *Name, const char *Help, double Value) {
    help(Name, Help, "gauge");
    sample(Name, "", Value);
  }

  /// Prometheus summary: quantile samples plus _sum and _count.
  void summary(const char *Name, const char *Help, const char *StageLabel,
               const LatencyStats &L, bool EmitHeader) {
    if (EmitHeader)
      help(Name, Help, "summary");
    if (L.empty())
      return;
    auto Quantile = [&](const char *Q, double P) {
      char Labels[96];
      if (StageLabel[0])
        std::snprintf(Labels, sizeof(Labels), "{stage=\"%s\",quantile=\"%s\"}",
                      StageLabel, Q);
      else
        std::snprintf(Labels, sizeof(Labels), "{quantile=\"%s\"}", Q);
      sample(Name, Labels, L.percentile(P));
    };
    Quantile("0.5", 50);
    Quantile("0.99", 99);
    Quantile("0.999", 99.9);
    char Labels[96] = "";
    if (StageLabel[0])
      std::snprintf(Labels, sizeof(Labels), "{stage=\"%s\"}", StageLabel);
    std::string SumName = std::string(Name) + "_sum";
    std::string CountName = std::string(Name) + "_count";
    sample(SumName.c_str(), Labels,
           L.mean() * static_cast<double>(L.count()));
    sample(CountName.c_str(), Labels, static_cast<double>(L.count()));
  }

  std::string take() { return std::move(Out); }

private:
  std::string Out;
};

std::uint64_t load(const std::atomic<std::uint64_t> &C) {
  return C.load(std::memory_order_relaxed);
}

} // namespace

std::string gnt::net::renderPrometheus(const NetMetrics &Net,
                                       const ServiceMetrics &Svc,
                                       const DiskCacheStats *Disk,
                                       unsigned DiskEntries) {
  Text T;

  // Connection and framing counters.
  T.counter("gntd_connections_accepted_total",
            "Connections accepted by the listener.",
            load(Net.ConnectionsAccepted));
  T.counter("gntd_connections_closed_total", "Connections closed.",
            load(Net.ConnectionsClosed));
  T.gauge("gntd_connections_active", "Currently open connections.",
          static_cast<double>(load(Net.ConnectionsActive)));
  T.counter("gntd_frames_total", "Complete request frames received.",
            load(Net.Frames));
  T.counter("gntd_responses_total", "Response lines written.",
            load(Net.Responses));
  T.counter("gntd_http_requests_total", "HTTP GET probes served.",
            load(Net.HttpRequests));

  // Framing/protocol failures.
  T.counter("gntd_malformed_frames_total",
            "Frames rejected as malformed requests.", load(Net.Malformed));
  T.counter("gntd_oversized_frames_total",
            "Frames rejected for exceeding the size limit.",
            load(Net.Oversized));
  T.counter("gntd_truncated_frames_total",
            "Connections that ended mid-frame.", load(Net.Truncated));

  // Load discipline.
  T.help("gntd_shed_total",
         "Requests answered with a structured overloaded error.",
         "counter");
  T.sample("gntd_shed_total", "{reason=\"queue_full\"}",
           static_cast<double>(load(Net.ShedQueueFull)));
  T.sample("gntd_shed_total", "{reason=\"quota\"}",
           static_cast<double>(load(Net.ShedQuota)));
  T.sample("gntd_shed_total", "{reason=\"draining\"}",
           static_cast<double>(load(Net.ShedDraining)));
  T.gauge("gntd_queue_depth", "Admitted jobs not yet completed.",
          static_cast<double>(load(Net.QueueDepth)));
  T.gauge("gntd_queue_depth_peak", "High-water mark of the job queue.",
          static_cast<double>(load(Net.QueuePeak)));

  // Service-layer counters.
  T.counter("gntd_jobs_total", "Requests served by the pipeline service.",
            Svc.Jobs);
  T.counter("gntd_jobs_failed_total",
            "Requests whose result carries errors.", Svc.Failed);
  T.counter("gntd_jobs_cancelled_total",
            "Requests cancelled by shutdown before starting.",
            Svc.Cancelled);
  T.help("gntd_cache_hits_total", "Result cache hits by layer.", "counter");
  T.sample("gntd_cache_hits_total", "{layer=\"memory\"}",
           static_cast<double>(Svc.CacheHits));
  T.sample("gntd_cache_hits_total", "{layer=\"disk\"}",
           static_cast<double>(Svc.DiskHits));
  T.counter("gntd_cache_misses_total",
            "Requests that required a full compilation.", Svc.CacheMisses);

  // Stage cache: per-stage hit/miss counters for the content-addressed
  // pipeline stages (only result-cache misses probe them).
  auto StageSamples = [&](const char *Name, const char *Help,
                          const unsigned long long *Counters) {
    T.help(Name, Help, "counter");
    for (unsigned I = 0; I < NumCacheStages; ++I) {
      char Labels[64];
      std::snprintf(Labels, sizeof(Labels), "{stage=\"%s\"}",
                    cacheStageName(static_cast<CacheStage>(I)));
      T.sample(Name, Labels, static_cast<double>(Counters[I]));
    }
  };
  StageSamples("gntd_stage_cache_hits_total",
               "Content-addressed stage cache hits by stage.",
               Svc.StageHits);
  StageSamples("gntd_stage_cache_misses_total",
               "Content-addressed stage cache misses by stage.",
               Svc.StageMisses);

  // Incremental solver outcomes and re-solve granularity.
  T.help("gntd_incremental_solves_total",
         "Incremental solver runs by outcome.", "counter");
  T.sample("gntd_incremental_solves_total", "{outcome=\"full\"}",
           static_cast<double>(Svc.Incremental.FullSolves));
  T.sample("gntd_incremental_solves_total", "{outcome=\"partial\"}",
           static_cast<double>(Svc.Incremental.PartialSolves));
  T.sample("gntd_incremental_solves_total", "{outcome=\"memo_hit\"}",
           static_cast<double>(Svc.Incremental.MemoHits));
  T.counter("gntd_incremental_intervals_resolved_total",
            "Intervals re-solved by partial incremental solves.",
            Svc.Incremental.IntervalsResolved);
  T.counter("gntd_incremental_intervals_seen_total",
            "Intervals examined by partial incremental solves.",
            Svc.Incremental.IntervalsTotal);

  // Persistent cache internals.
  if (Disk) {
    T.counter("gntd_disk_cache_writes_total",
              "Entries written to the persistent cache.",
              load(Disk->Writes));
    T.counter("gntd_disk_cache_corrupt_total",
              "Persistent entries discarded as corrupt or mismatched.",
              load(Disk->Corrupt));
    T.counter("gntd_disk_cache_evicted_total",
              "Persistent entries evicted for capacity.",
              load(Disk->Evicted));
    T.gauge("gntd_disk_cache_entries",
            "Entries currently in the persistent cache.",
            static_cast<double>(DiskEntries));
  }

  // Latency summaries (microseconds).
  T.summary("gntd_job_latency_microseconds",
            "Whole-job service latency (hits and misses).", "",
            Svc.JobLatency, /*EmitHeader=*/true);
  bool First = true;
  for (unsigned I = 0; I < NumPipelineStages; ++I) {
    T.summary("gntd_stage_latency_microseconds",
              "Per-pipeline-stage latency (cache misses only).",
              pipelineStageName(static_cast<PipelineStage>(I)),
              Svc.StageLatency[I], First);
    First = false;
  }

  return T.take();
}
