//===- net/NetServer.cpp - Epoll compilation service ------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/NetServer.h"

#include "net/Framing.h"
#include "net/Prometheus.h"
#include "support/Support.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

using namespace gnt;
using namespace gnt::net;

//===----------------------------------------------------------------------===//
// Structured error payloads
//===----------------------------------------------------------------------===//

namespace {

std::string taggedErrorPayload(const std::string &Error,
                               const std::string &Reason,
                               const std::string &Detail) {
  DiagnosticSet Diags;
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Check = CheckId::Engine;
  D.Message = Detail;
  Diags.add(std::move(D));
  JsonWriter W;
  W.beginObject();
  W.key("ok").value(false);
  W.key("error").value(Error);
  W.key("reason").value(Reason);
  W.key("annotated").value(std::string());
  W.key("diagnostics").raw(Diags.renderJson());
  W.endObject();
  return W.str();
}

constexpr std::uint64_t TagListen = 0;
constexpr std::uint64_t TagWake = 1;

} // namespace

std::string gnt::net::renderShedPayload(const std::string &Reason,
                                        const std::string &Detail) {
  return taggedErrorPayload("overloaded", Reason, Detail);
}

std::string gnt::net::renderBadFramePayload(const std::string &Reason,
                                            const std::string &Detail) {
  return taggedErrorPayload("bad_frame", Reason, Detail);
}

//===----------------------------------------------------------------------===//
// Connection state
//===----------------------------------------------------------------------===//

struct NetServer::Conn {
  explicit Conn(std::size_t MaxFrameBytes) : In(MaxFrameBytes) {}

  int Fd = -1;
  std::uint64_t Id = 0;

  FrameExtractor In;
  std::string Out;
  std::size_t OutOff = 0;

  /// Response slot numbering: every frame gets the next Seq; responses
  /// are written strictly in Seq order no matter when workers finish.
  std::uint64_t NextSeq = 0;
  std::uint64_t NextToSend = 0;
  std::map<std::uint64_t, std::string> Ready;
  /// Jobs of this connection sitting in the queue or running.
  unsigned Pending = 0;

  bool WantWrite = false;   ///< EPOLLOUT currently requested.
  bool StopReading = false; ///< EPOLLIN dropped (framing failure, EOF).
  bool Http = false;        ///< Switched to one-shot HTTP service.
  bool PeerEof = false;
  /// Close once every queued response is flushed and nothing is
  /// pending.
  bool CloseAfterDrain = false;
  bool Dead = false; ///< Marked for reap at end of loop iteration.
};

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

NetServer::NetServer(ServiceConfig SC, NetConfig NC)
    : Config(std::move(NC)), Service(std::move(SC)),
      Queue(Config.MaxPending) {}

NetServer::~NetServer() {
  if (Started && !Joined) {
    requestDrain();
    join();
  }
}

bool NetServer::start(std::string &Error) {
  ListenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (ListenFd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Config.Port);
  if (::inet_pton(AF_INET, Config.Host.c_str(), &Addr.sin_addr) != 1) {
    Error = "cannot parse host address `" + Config.Host + "`";
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Error = "bind " + Config.Host + ":" + itostr(Config.Port) + ": " +
            std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (::listen(ListenFd, 512) < 0) {
    Error = std::string("listen: ") + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  socklen_t Len = sizeof(Addr);
  ::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len);
  BoundPort = ntohs(Addr.sin_port);

  EpollFd = ::epoll_create1(EPOLL_CLOEXEC);
  WakeFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (EpollFd < 0 || WakeFd < 0) {
    Error = std::string("epoll/eventfd: ") + std::strerror(errno);
    join();
    return false;
  }
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.u64 = TagListen;
  ::epoll_ctl(EpollFd, EPOLL_CTL_ADD, ListenFd, &Ev);
  Ev.data.u64 = TagWake;
  ::epoll_ctl(EpollFd, EPOLL_CTL_ADD, WakeFd, &Ev);

  // At least one worker: with zero the loop itself would compile and
  // every connection would stall behind the slowest job.
  unsigned Workers = Service.config().Workers;
  Pool = std::make_unique<ThreadPool>(Workers ? Workers : 1);

  Started = true;
  Loop = std::thread([this] { eventLoop(); });
  return true;
}

void NetServer::requestDrain() {
  Draining.store(true, std::memory_order_release);
  if (WakeFd >= 0)
    wakeLoop();
}

void NetServer::wakeLoop() {
  std::uint64_t OneU64 = 1;
  // write(2) on an eventfd is async-signal-safe; the counter semantics
  // coalesce any number of wakes into one loop iteration.
  [[maybe_unused]] ssize_t R = ::write(WakeFd, &OneU64, sizeof(OneU64));
}

void NetServer::join() {
  if (Joined)
    return;
  if (Loop.joinable())
    Loop.join();
  // Drain the pool only after the loop is gone: stragglers (drain
  // timeout) may still post completions that write WakeFd.
  Pool.reset();
  if (ListenFd >= 0)
    ::close(ListenFd);
  if (WakeFd >= 0)
    ::close(WakeFd);
  if (EpollFd >= 0)
    ::close(EpollFd);
  ListenFd = WakeFd = EpollFd = -1;
  Service.flushDiskCache();
  Joined = true;
}

std::string NetServer::renderMetricsText() {
  ServiceMetrics Svc = Service.metricsSnapshot();
  const DiskCache *Disk = Service.diskCache();
  return renderPrometheus(Net, Svc, Disk ? &Disk->stats() : nullptr,
                          Disk ? Disk->entries() : 0);
}

//===----------------------------------------------------------------------===//
// Event loop
//===----------------------------------------------------------------------===//

void NetServer::eventLoop() {
  using Clock = std::chrono::steady_clock;
  epoll_event Events[64];
  bool ListenerClosed = false;
  Clock::time_point DrainStart{};

  for (;;) {
    int N = ::epoll_wait(EpollFd, Events, 64, 100);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    for (int I = 0; I < N; ++I) {
      std::uint64_t Tag = Events[I].data.u64;
      if (Tag == TagListen) {
        acceptReady();
        continue;
      }
      if (Tag == TagWake) {
        std::uint64_t Count;
        while (::read(WakeFd, &Count, sizeof(Count)) > 0) {
        }
        continue;
      }
      auto It = Conns.find(Tag);
      if (It == Conns.end())
        continue; // Closed earlier in this batch.
      Conn &C = *It->second;
      if (Events[I].events & (EPOLLERR | EPOLLHUP)) {
        // Peer reset: pending work for this connection completes and is
        // discarded at routing time.
        kill(C);
        continue;
      }
      if (Events[I].events & EPOLLIN)
        handleReadable(C);
      if (Events[I].events & EPOLLOUT)
        handleWritable(C);
    }

    drainOutbox();
    reapDead();

    if (Draining.load(std::memory_order_acquire)) {
      if (!ListenerClosed) {
        // Stop accepting; established connections keep draining.
        ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, ListenFd, nullptr);
        ListenerClosed = true;
        DrainStart = Clock::now();
      }
      bool TimedOut =
          Clock::now() - DrainStart >
          std::chrono::milliseconds(Config.DrainTimeoutMs);
      if (drainComplete() || TimedOut)
        break;
    }
  }

  // Teardown: every remaining connection closes (flushed or not — the
  // drain-complete check above gave them their chance).
  for (auto &[Id, C] : Conns) {
    ::close(C->Fd);
    Net.ConnectionsClosed.fetch_add(1, std::memory_order_relaxed);
    Net.ConnectionsActive.fetch_sub(1, std::memory_order_relaxed);
  }
  Conns.clear();
}

void NetServer::acceptReady() {
  for (;;) {
    int Fd = ::accept4(ListenFd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // EAGAIN or transient accept failure: try again later.
    }
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    auto C = std::make_unique<Conn>(Config.MaxFrameBytes);
    C->Fd = Fd;
    C->Id = NextConnId++;
    epoll_event Ev{};
    Ev.events = EPOLLIN;
    Ev.data.u64 = C->Id;
    ::epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev);
    Net.ConnectionsAccepted.fetch_add(1, std::memory_order_relaxed);
    Net.ConnectionsActive.fetch_add(1, std::memory_order_relaxed);
    Conns[C->Id] = std::move(C);
  }
}

void NetServer::kill(Conn &C) {
  if (C.Dead)
    return;
  C.Dead = true;
  DeadConns.push_back(C.Id);
}

void NetServer::reapDead() {
  for (std::uint64_t Id : DeadConns) {
    auto It = Conns.find(Id);
    if (It == Conns.end())
      continue;
    ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, It->second->Fd, nullptr);
    ::close(It->second->Fd);
    Conns.erase(It);
    Net.ConnectionsClosed.fetch_add(1, std::memory_order_relaxed);
    Net.ConnectionsActive.fetch_sub(1, std::memory_order_relaxed);
  }
  DeadConns.clear();
}

void NetServer::updateInterest(Conn &C) {
  epoll_event Ev{};
  Ev.events = (C.StopReading ? 0u : unsigned(EPOLLIN)) |
              (C.WantWrite ? unsigned(EPOLLOUT) : 0u);
  Ev.data.u64 = C.Id;
  ::epoll_ctl(EpollFd, EPOLL_CTL_MOD, C.Fd, &Ev);
}

//===----------------------------------------------------------------------===//
// Reading and framing
//===----------------------------------------------------------------------===//

void NetServer::handleReadable(Conn &C) {
  if (C.Dead || C.StopReading)
    return;
  char Buf[64 * 1024];
  for (;;) {
    ssize_t R = ::read(C.Fd, Buf, sizeof(Buf));
    if (R > 0) {
      C.In.append(Buf, static_cast<std::size_t>(R));
      continue;
    }
    if (R == 0) {
      C.PeerEof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    if (errno == EINTR)
      continue;
    kill(C);
    return;
  }
  processBuffered(C);
}

void NetServer::processBuffered(Conn &C) {
  if (C.Dead)
    return;

  // Sniff HTTP before committing to JSON framing: "GET " can only be a
  // metrics probe (a JSON-lines request always starts with '{').
  if (!C.Http && C.In.hasPartial() && C.In.startsWith("GET ")) {
    if (C.In.buffered() >= 4)
      C.Http = true;
    else if (!C.PeerEof)
      return; // "G", "GE", "GET": wait for the decisive byte.
  }
  if (C.Http) {
    handleHttp(C);
    return;
  }

  std::string Line;
  while (!C.StopReading) {
    FrameExtractor::Status S = C.In.next(Line);
    if (S == FrameExtractor::Status::Frame) {
      handleFrame(C, std::move(Line));
      if (C.Dead)
        return;
      continue;
    }
    if (S == FrameExtractor::Status::Oversized) {
      // No way to find the next frame boundary in an over-limit
      // stream: answer once, stop reading, close after flush.
      Net.Oversized.fetch_add(1, std::memory_order_relaxed);
      std::uint64_t Seq = C.NextSeq++;
      routeResponse(
          C, Seq,
          renderResponse(
              "c" + itostr(static_cast<long long>(C.Id)) + "-" +
                  itostr(static_cast<long long>(Seq + 1)),
              renderBadFramePayload(
                  "oversized",
                  "frame exceeds the " +
                      itostr(static_cast<long long>(Config.MaxFrameBytes)) +
                      "-byte limit; closing connection")));
      C.StopReading = true;
      C.CloseAfterDrain = true;
      updateInterest(C);
      maybeFinish(C);
      break;
    }
    break; // NeedMore.
  }

  if (C.PeerEof && !C.Dead && !C.StopReading) {
    if (C.In.hasPartial()) {
      // EOF mid-frame: the final request can never complete. Answer it
      // (the peer may have only shut down its write side) and close.
      Net.Truncated.fetch_add(1, std::memory_order_relaxed);
      std::uint64_t Seq = C.NextSeq++;
      routeResponse(
          C, Seq,
          renderResponse("c" + itostr(static_cast<long long>(C.Id)) + "-" +
                             itostr(static_cast<long long>(Seq + 1)),
                         renderBadFramePayload(
                             "truncated",
                             "connection ended inside an unterminated "
                             "frame of " +
                                 itostr(static_cast<long long>(
                                     C.In.buffered())) +
                                 " bytes")));
    }
    C.StopReading = true;
    C.CloseAfterDrain = true;
    updateInterest(C);
    maybeFinish(C);
  }
}

void NetServer::handleFrame(Conn &C, std::string Line) {
  // Blank lines are skipped exactly like the stdio batch reader.
  if (Line.find_first_not_of(" \t\r\n") == std::string::npos)
    return;
  Net.Frames.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t Seq = C.NextSeq++;
  std::string DefaultId = "c" + itostr(static_cast<long long>(C.Id)) + "-" +
                          itostr(static_cast<long long>(Seq + 1));

  ServiceRequest Req;
  std::string Error;
  if (!parseServiceRequest(Line, DefaultId, Req, Error)) {
    // Same payload bytes a stdio batch would produce for this line.
    Net.Malformed.fetch_add(1, std::memory_order_relaxed);
    routeResponse(C, Seq,
                  renderResponse(DefaultId, renderErrorPayload(Error)));
    return;
  }

  if (Draining.load(std::memory_order_acquire)) {
    Net.ShedDraining.fetch_add(1, std::memory_order_relaxed);
    routeResponse(C, Seq,
                  renderResponse(Req.Id,
                                 renderShedPayload(
                                     "draining",
                                     "overloaded: server is draining for "
                                     "shutdown")));
    return;
  }

  if (Config.QuotaRps > 0) {
    auto Now = TokenBucket::Clock::now();
    auto [It, Inserted] = Buckets.try_emplace(
        Req.Tenant, Config.QuotaRps, Config.QuotaBurst, Now);
    (void)Inserted;
    if (!It->second.tryTake(Now)) {
      Net.ShedQuota.fetch_add(1, std::memory_order_relaxed);
      routeResponse(
          C, Seq,
          renderResponse(Req.Id,
                         renderShedPayload(
                             "quota",
                             "overloaded: tenant `" + Req.Tenant +
                                 "` exceeded its admission quota")));
      return;
    }
  }

  NetJob Job;
  Job.Conn = C.Id;
  Job.Seq = Seq;
  std::string Id = Req.Id;
  Job.Req = std::move(Req);
  if (!Queue.tryEnqueue(std::move(Job))) {
    Net.ShedQueueFull.fetch_add(1, std::memory_order_relaxed);
    routeResponse(
        C, Seq,
        renderResponse(Id, renderShedPayload(
                               "queue_full",
                               "overloaded: admission queue is full (" +
                                   itostr(static_cast<long long>(
                                       Queue.capacity())) +
                                   " pending jobs)")));
    return;
  }

  ++C.Pending;
  std::uint64_t Depth = InFlight.fetch_add(1, std::memory_order_relaxed) + 1;
  Net.QueueDepth.store(Depth, std::memory_order_relaxed);
  Net.notePeak(Depth);
  // One pool task per admitted job; the task pulls the *next* job in
  // fair order, which is not necessarily this one.
  Pool->submit([this] { workerRun(); });
}

//===----------------------------------------------------------------------===//
// HTTP (/metrics)
//===----------------------------------------------------------------------===//

void NetServer::handleHttp(Conn &C) {
  std::string Line;
  FrameExtractor::Status S = C.In.next(Line);
  if (S == FrameExtractor::Status::NeedMore) {
    if (C.PeerEof)
      kill(C);
    return;
  }
  if (S == FrameExtractor::Status::Oversized) {
    kill(C);
    return;
  }

  Net.HttpRequests.fetch_add(1, std::memory_order_relaxed);
  // "GET <path> [HTTP/x.y]" — everything after the path is ignored, as
  // are any request headers still in flight (we answer and close).
  std::string Path;
  std::size_t SpaceA = Line.find(' ');
  if (SpaceA != std::string::npos) {
    std::size_t SpaceB = Line.find(' ', SpaceA + 1);
    Path = Line.substr(SpaceA + 1, SpaceB == std::string::npos
                                       ? std::string::npos
                                       : SpaceB - SpaceA - 1);
  }

  std::string Body;
  const char *Status;
  const char *Type;
  if (Path == "/metrics") {
    Body = renderMetricsText();
    Status = "200 OK";
    Type = "text/plain; version=0.0.4; charset=utf-8";
  } else {
    Body = "not found; try /metrics\n";
    Status = "404 Not Found";
    Type = "text/plain; charset=utf-8";
  }
  C.Out += "HTTP/1.0 ";
  C.Out += Status;
  C.Out += "\r\nContent-Type: ";
  C.Out += Type;
  C.Out += "\r\nContent-Length: ";
  C.Out += itostr(static_cast<long long>(Body.size()));
  C.Out += "\r\nConnection: close\r\n\r\n";
  C.Out += Body;
  C.StopReading = true;
  C.CloseAfterDrain = true;
  tryWrite(C);
}

//===----------------------------------------------------------------------===//
// Response routing and writing
//===----------------------------------------------------------------------===//

void NetServer::workerRun() {
  NetJob Job;
  if (!Queue.dequeue(Job))
    return; // Tasks and jobs are 1:1; only a logic bug lands here.
  std::string Response = Service.serve(Job.Req);
  {
    std::lock_guard<std::mutex> Lock(OutboxM);
    Outbox.push_back({Job.Conn, Job.Seq, std::move(Response)});
  }
  wakeLoop();
}

void NetServer::drainOutbox() {
  std::vector<Completion> Local;
  {
    std::lock_guard<std::mutex> Lock(OutboxM);
    Local.swap(Outbox);
  }
  for (Completion &Done : Local) {
    std::uint64_t Depth =
        InFlight.fetch_sub(1, std::memory_order_relaxed) - 1;
    Net.QueueDepth.store(Depth, std::memory_order_relaxed);
    auto It = Conns.find(Done.ConnId);
    if (It == Conns.end() || It->second->Dead)
      continue; // Connection went away; the result is already cached.
    Conn &C = *It->second;
    --C.Pending;
    routeResponse(C, Done.Seq, std::move(Done.Response));
  }
}

void NetServer::routeResponse(Conn &C, std::uint64_t Seq, std::string Line) {
  C.Ready.emplace(Seq, std::move(Line));
  flushReady(C);
}

void NetServer::flushReady(Conn &C) {
  if (C.Dead)
    return;
  for (auto It = C.Ready.find(C.NextToSend); It != C.Ready.end();
       It = C.Ready.find(C.NextToSend)) {
    C.Out += It->second;
    C.Out += '\n';
    C.Ready.erase(It);
    ++C.NextToSend;
    Net.Responses.fetch_add(1, std::memory_order_relaxed);
  }
  tryWrite(C);
}

void NetServer::handleWritable(Conn &C) { tryWrite(C); }

void NetServer::tryWrite(Conn &C) {
  if (C.Dead)
    return;
  while (C.OutOff < C.Out.size()) {
    ssize_t W = ::write(C.Fd, C.Out.data() + C.OutOff,
                        C.Out.size() - C.OutOff);
    if (W > 0) {
      C.OutOff += static_cast<std::size_t>(W);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    if (errno == EINTR)
      continue;
    kill(C); // EPIPE et al: the peer is gone.
    return;
  }
  if (C.OutOff == C.Out.size()) {
    C.Out.clear();
    C.OutOff = 0;
  }
  bool NeedOut = !C.Out.empty();
  if (NeedOut != C.WantWrite) {
    C.WantWrite = NeedOut;
    updateInterest(C);
  }
  maybeFinish(C);
}

void NetServer::maybeFinish(Conn &C) {
  if (!C.Dead && C.CloseAfterDrain && C.Out.empty() && C.Ready.empty() &&
      C.Pending == 0)
    kill(C);
}

bool NetServer::drainComplete() {
  if (InFlight.load(std::memory_order_relaxed) != 0)
    return false;
  {
    std::lock_guard<std::mutex> Lock(OutboxM);
    if (!Outbox.empty())
      return false;
  }
  for (const auto &[Id, C] : Conns)
    if (!C->Out.empty() || !C->Ready.empty() || C->Pending != 0)
      return false;
  return true;
}
