//===- net/NetMetrics.h - Socket-layer counters ----------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic counters and gauges for everything that happens below the
/// service layer: connections, frames, sheds, framing errors, queue
/// depth. All atomics — the event loop and the /metrics renderer touch
/// them concurrently without a lock. Job/cache/latency accounting stays
/// in ServiceMetrics (service/Metrics.h); this struct covers only what
/// the stdio batch server never sees.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_NET_NETMETRICS_H
#define GNT_NET_NETMETRICS_H

#include <atomic>
#include <cstdint>

namespace gnt::net {

struct NetMetrics {
  using Counter = std::atomic<std::uint64_t>;

  Counter ConnectionsAccepted{0};
  Counter ConnectionsClosed{0};
  Counter ConnectionsActive{0}; ///< Gauge.

  Counter Frames{0};    ///< Complete request frames received.
  Counter Responses{0}; ///< Response lines queued for write.

  Counter Malformed{0}; ///< Frames that were not a valid request.
  Counter Oversized{0}; ///< Frames over the size limit (conn closed).
  Counter Truncated{0}; ///< EOF with an unterminated partial frame.

  Counter ShedQueueFull{0}; ///< Admission refused: pending queue full.
  Counter ShedQuota{0};     ///< Admission refused: tenant out of tokens.
  Counter ShedDraining{0};  ///< Admission refused: server draining.

  Counter HttpRequests{0}; ///< GET probes served (any path).

  Counter QueueDepth{0}; ///< Gauge: admitted jobs not yet completed.
  Counter QueuePeak{0};  ///< High-water mark of QueueDepth.

  std::uint64_t shedTotal() const {
    return ShedQueueFull.load(std::memory_order_relaxed) +
           ShedQuota.load(std::memory_order_relaxed) +
           ShedDraining.load(std::memory_order_relaxed);
  }

  /// Raises QueuePeak to at least \p Depth.
  void notePeak(std::uint64_t Depth) {
    std::uint64_t Peak = QueuePeak.load(std::memory_order_relaxed);
    while (Depth > Peak &&
           !QueuePeak.compare_exchange_weak(Peak, Depth,
                                            std::memory_order_relaxed)) {
    }
  }
};

} // namespace gnt::net

#endif // GNT_NET_NETMETRICS_H
