//===- net/Framing.h - Newline request framing -----------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental newline framing for socket connections. Bytes arrive in
/// arbitrary chunks; FrameExtractor accumulates them and yields one
/// frame per '\n' (a trailing '\r' is stripped, so both raw JSON-lines
/// clients and CRLF-minded ones work). The extractor enforces a maximum
/// frame size: a connection that streams more than MaxFrameBytes
/// without a newline is reported Oversized — the caller answers with a
/// structured error and closes, because there is no way to resynchronize
/// an unbounded frame. Also hosts the cheap sniffing helpers that let
/// one port serve both framed JSON and `GET /metrics` HTTP probes.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_NET_FRAMING_H
#define GNT_NET_FRAMING_H

#include <cstddef>
#include <string>

namespace gnt::net {

class FrameExtractor {
public:
  explicit FrameExtractor(std::size_t MaxFrameBytes)
      : MaxFrameBytes(MaxFrameBytes) {}

  void append(const char *Data, std::size_t Len) { Buf.append(Data, Len); }

  enum class Status {
    NeedMore,  ///< No complete frame buffered yet.
    Frame,     ///< \p Line was filled with one complete frame.
    Oversized, ///< Buffered bytes exceed MaxFrameBytes with no newline.
  };

  /// Extracts the next complete frame into \p Line (without the
  /// delimiter). Call until it stops returning Frame.
  Status next(std::string &Line);

  /// Bytes buffered but not yet returned as a frame. Nonzero at EOF
  /// means the peer sent a truncated final frame.
  std::size_t buffered() const { return Buf.size(); }
  bool hasPartial() const { return !Buf.empty(); }

  /// True when the buffered bytes are (a prefix of) \p Prefix, or start
  /// with it — used to sniff "GET " before committing to JSON framing.
  bool startsWith(const char *Prefix) const;

private:
  std::size_t MaxFrameBytes;
  std::size_t Scan = 0; ///< Buf[0..Scan) is known newline-free.
  std::string Buf;
};

} // namespace gnt::net

#endif // GNT_NET_FRAMING_H
