//===- net/Prometheus.h - /metrics text exposition -------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the server's counters in the Prometheus text exposition
/// format (version 0.0.4): HELP/TYPE headers, `gntd_`-prefixed counter
/// and gauge samples, and summary quantiles (p50/p99/p999 plus _sum and
/// _count) for the whole-job and per-stage latency distributions. The
/// renderer takes value snapshots, not live references to locked state,
/// so it can run while workers keep recording.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_NET_PROMETHEUS_H
#define GNT_NET_PROMETHEUS_H

#include "net/NetMetrics.h"
#include "service/DiskCache.h"
#include "service/Metrics.h"

#include <string>

namespace gnt::net {

/// Renders everything: socket counters, service job/cache counters,
/// latency summaries, and (when \p Disk is non-null) the persistent
/// cache's own counters with \p DiskEntries as the current entry gauge.
std::string renderPrometheus(const NetMetrics &Net,
                             const ServiceMetrics &Svc,
                             const DiskCacheStats *Disk,
                             unsigned DiskEntries);

} // namespace gnt::net

#endif // GNT_NET_PROMETHEUS_H
