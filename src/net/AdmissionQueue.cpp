//===- net/AdmissionQueue.cpp - Bounded fair admission queue ----------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/AdmissionQueue.h"

using namespace gnt::net;

bool AdmissionQueue::tryEnqueue(NetJob J) {
  std::lock_guard<std::mutex> Lock(M);
  if (Size >= MaxPending)
    return false;
  std::deque<NetJob> &Q = PerTenant[J.Req.Tenant];
  if (Q.empty())
    Rotation.push_back(J.Req.Tenant);
  Q.push_back(std::move(J));
  ++Size;
  return true;
}

bool AdmissionQueue::dequeue(NetJob &J) {
  std::lock_guard<std::mutex> Lock(M);
  if (Rotation.empty())
    return false;
  std::string Tenant = std::move(Rotation.front());
  Rotation.pop_front();
  auto It = PerTenant.find(Tenant);
  std::deque<NetJob> &Q = It->second;
  J = std::move(Q.front());
  Q.pop_front();
  --Size;
  if (Q.empty())
    PerTenant.erase(It);
  else
    Rotation.push_back(std::move(Tenant)); // Back of the service order.
  return true;
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> Lock(M);
  return Size;
}
