//===- net/TokenBucket.h - Per-tenant rate limiting ------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic token bucket: capacity `Burst` tokens, refilled at `Rate`
/// tokens per second, one token per admitted request. The caller passes
/// the clock in (steady_clock::now() in production, a synthetic clock
/// in tests), so quota behavior is unit-testable without sleeping.
/// Buckets start full — a tenant's first burst is admitted even at low
/// sustained rates, which is the behavior operators expect.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_NET_TOKENBUCKET_H
#define GNT_NET_TOKENBUCKET_H

#include <chrono>

namespace gnt::net {

class TokenBucket {
public:
  using Clock = std::chrono::steady_clock;

  TokenBucket(double RatePerSec, double Burst, Clock::time_point Now)
      : Rate(RatePerSec), Burst(Burst < 1 ? 1 : Burst),
        Tokens(this->Burst), Last(Now) {}

  /// Takes one token if available after refilling up to \p Now.
  bool tryTake(Clock::time_point Now) {
    refill(Now);
    if (Tokens < 1.0)
      return false;
    Tokens -= 1.0;
    return true;
  }

  double tokens() const { return Tokens; }

private:
  void refill(Clock::time_point Now) {
    if (Now <= Last)
      return;
    double Elapsed = std::chrono::duration<double>(Now - Last).count();
    Last = Now;
    Tokens += Elapsed * Rate;
    if (Tokens > Burst)
      Tokens = Burst;
  }

  double Rate;
  double Burst;
  double Tokens;
  Clock::time_point Last;
};

} // namespace gnt::net

#endif // GNT_NET_TOKENBUCKET_H
