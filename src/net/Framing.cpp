//===- net/Framing.cpp - Newline request framing ----------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/Framing.h"

#include <cstring>

using namespace gnt::net;

FrameExtractor::Status FrameExtractor::next(std::string &Line) {
  std::size_t Pos = Buf.find('\n', Scan);
  if (Pos == std::string::npos) {
    Scan = Buf.size();
    // The limit applies to a single unterminated frame; a terminated
    // frame of any buffered size was already handed out below.
    return Buf.size() > MaxFrameBytes ? Status::Oversized
                                      : Status::NeedMore;
  }
  Line.assign(Buf, 0, Pos);
  if (!Line.empty() && Line.back() == '\r')
    Line.pop_back();
  Buf.erase(0, Pos + 1);
  Scan = 0;
  if (Line.size() > MaxFrameBytes)
    return Status::Oversized;
  return Status::Frame;
}

bool FrameExtractor::startsWith(const char *Prefix) const {
  std::size_t N = std::strlen(Prefix);
  std::size_t Check = Buf.size() < N ? Buf.size() : N;
  return std::memcmp(Buf.data(), Prefix, Check) == 0;
}
