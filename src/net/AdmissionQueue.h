//===- net/AdmissionQueue.h - Bounded fair admission queue -----*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The load-discipline heart of the socket server: a bounded pending
/// queue with per-tenant fairness. Admission is all-or-nothing — when
/// the queue is at capacity, tryEnqueue() refuses and the server sheds
/// that request with a structured `overloaded` response instead of
/// letting the backlog (and client-perceived latency) grow without
/// bound. Dequeue round-robins across tenants that have pending work,
/// so one tenant flooding the queue cannot starve the others: with k
/// active tenants each is guaranteed every k-th execution slot,
/// regardless of arrival interleaving.
///
/// Thread-safe; workers pull with dequeue() while the event loop pushes.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_NET_ADMISSIONQUEUE_H
#define GNT_NET_ADMISSIONQUEUE_H

#include "service/BatchServer.h"

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

namespace gnt::net {

/// One admitted request: which connection and response slot it belongs
/// to, plus the decoded request itself.
struct NetJob {
  std::uint64_t Conn = 0;
  std::uint64_t Seq = 0;
  ServiceRequest Req;
};

class AdmissionQueue {
public:
  explicit AdmissionQueue(unsigned MaxPending)
      : MaxPending(MaxPending ? MaxPending : 1) {}

  /// Admits \p J unless the queue is full. The tenant key is read from
  /// J.Req.Tenant ("" = shared anonymous tenant).
  bool tryEnqueue(NetJob J);

  /// Pops the next job in fair (tenant round-robin) order; false when
  /// empty.
  bool dequeue(NetJob &J);

  std::size_t depth() const;
  unsigned capacity() const { return MaxPending; }

private:
  mutable std::mutex M;
  unsigned MaxPending;
  std::size_t Size = 0;
  /// Per-tenant FIFOs; std::map so iteration (and thus first-service
  /// order after idleness) is content-determined, not hash-ordered.
  std::map<std::string, std::deque<NetJob>> PerTenant;
  /// Tenants with pending work, in service order.
  std::deque<std::string> Rotation;
};

} // namespace gnt::net

#endif // GNT_NET_ADMISSIONQUEUE_H
