//===- net/NetServer.h - Epoll compilation service -------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving subsystem that promotes gntd from a stdin batch tool to
/// a network service. One non-blocking epoll event loop owns every
/// socket: it multi-accepts connections, reads newline-framed JSON
/// requests incrementally into per-connection buffers, and feeds
/// decoded jobs through the load-discipline stack — per-tenant
/// token-bucket quotas, then a bounded admission queue with fair
/// (tenant round-robin) dequeue — into the existing worker ThreadPool.
/// Workers execute through BatchServer::serve (LRU + persistent disk
/// cache + pipeline) and post completions back to the loop over an
/// eventfd; the loop writes each connection's responses strictly in
/// that connection's request order, so any worker count and any
/// completion interleaving produce the same bytes on the wire.
///
/// Overload never stalls or kills a connection: a full queue, an
/// exhausted quota, or a draining server answers immediately with a
/// structured `overloaded` payload ({"error":"overloaded","reason":...})
/// and keeps serving. Framing failures (oversized or truncated frames,
/// non-JSON garbage) get structured errors too — the connection is
/// closed only when resynchronization is impossible.
///
/// The same port speaks just enough HTTP to serve Prometheus:
/// `GET /metrics` returns the text exposition of every counter and
/// latency summary (net/Prometheus.h).
///
/// requestDrain() (async-signal-safe) starts a graceful shutdown: the
/// listener closes, queued and in-flight jobs finish, response buffers
/// flush, then the loop exits; join() waits for that and flushes the
/// persistent cache index.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_NET_NETSERVER_H
#define GNT_NET_NETSERVER_H

#include "net/AdmissionQueue.h"
#include "net/NetMetrics.h"
#include "net/TokenBucket.h"
#include "service/BatchServer.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gnt::net {

/// Socket-layer configuration; service execution (workers, caches) is
/// configured through the embedded ServiceConfig.
struct NetConfig {
  std::string Host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port, read back with port().
  std::uint16_t Port = 0;
  /// Admission queue bound: jobs admitted but not yet started. Requests
  /// beyond it are shed with reason "queue_full".
  unsigned MaxPending = 256;
  /// Largest acceptable request frame; longer unterminated input is
  /// answered with a structured error and the connection is closed.
  std::size_t MaxFrameBytes = 1 << 20;
  /// Per-tenant sustained admission rate in requests/second; 0 turns
  /// quota enforcement off entirely.
  double QuotaRps = 0;
  /// Per-tenant burst allowance (token bucket capacity).
  double QuotaBurst = 32;
  /// Hard cap on graceful drain; connections still unflushed after this
  /// are closed anyway so shutdown cannot hang on a dead client.
  unsigned DrainTimeoutMs = 10000;
};

class NetServer {
public:
  NetServer(ServiceConfig SC, NetConfig NC);
  ~NetServer();

  NetServer(const NetServer &) = delete;
  NetServer &operator=(const NetServer &) = delete;

  /// Binds, listens, and spawns the event loop and worker pool. False
  /// with \p Error set on any socket-layer failure.
  bool start(std::string &Error);

  /// The bound port (useful with Port = 0).
  std::uint16_t port() const { return BoundPort; }

  /// Begins graceful drain. Async-signal-safe once start() returned.
  void requestDrain();

  /// Waits for the drain to complete and releases every resource;
  /// flushes the persistent cache index. Idempotent.
  void join();

  BatchServer &service() { return Service; }
  const NetMetrics &metrics() const { return Net; }

  /// Prometheus text snapshot (what GET /metrics serves).
  std::string renderMetricsText();

private:
  struct Conn;
  struct Completion {
    std::uint64_t ConnId;
    std::uint64_t Seq;
    std::string Response;
  };

  void eventLoop();
  void acceptReady();
  void handleReadable(Conn &C);
  void handleWritable(Conn &C);
  void processBuffered(Conn &C);
  void handleFrame(Conn &C, std::string Line);
  void handleHttp(Conn &C);
  /// Queues \p Line as the response for slot \p Seq of \p C.
  void routeResponse(Conn &C, std::uint64_t Seq, std::string Line);
  void flushReady(Conn &C);
  void tryWrite(Conn &C);
  void maybeFinish(Conn &C);
  void updateInterest(Conn &C);
  /// Marks \p C for closing; the loop reaps marked connections at the
  /// end of the iteration (so handlers never free state under
  /// themselves).
  void kill(Conn &C);
  void reapDead();
  void drainOutbox();
  bool drainComplete();
  void workerRun();
  void wakeLoop();

  NetConfig Config;
  BatchServer Service;
  AdmissionQueue Queue;
  NetMetrics Net;

  std::unique_ptr<ThreadPool> Pool;
  std::thread Loop;

  int ListenFd = -1;
  int EpollFd = -1;
  int WakeFd = -1;
  std::uint16_t BoundPort = 0;
  bool Started = false;
  bool Joined = false;

  std::atomic<bool> Draining{false};
  /// Jobs admitted whose completion has not been routed yet.
  std::atomic<std::uint64_t> InFlight{0};

  std::mutex OutboxM;
  std::vector<Completion> Outbox;

  // Event-loop-thread state.
  std::map<std::uint64_t, std::unique_ptr<Conn>> Conns;
  std::uint64_t NextConnId = 2; ///< 0 = listener tag, 1 = wake tag.
  std::vector<std::uint64_t> DeadConns;
  std::map<std::string, TokenBucket> Buckets;
};

/// Structured shed payload: {"ok":false,"error":"overloaded",
/// "reason":<reason>,...} plus one engine diagnostic with \p Detail.
std::string renderShedPayload(const std::string &Reason,
                              const std::string &Detail);

/// Structured framing-failure payload with "error":"bad_frame".
std::string renderBadFramePayload(const std::string &Reason,
                                  const std::string &Detail);

} // namespace gnt::net

#endif // GNT_NET_NETSERVER_H
