//===- tools/gntc.cpp - GIVE-N-TAKE command line driver ---------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// gntc: analyze an FMini program and print the communication-annotated
// form (or other views of the pipeline).
//
//   gntc [options] file.fm        (or `-` for stdin)
//
// The option table lives in usage() below and must stay in sync with
// parseArgs(); ToolCliTest checks the obvious drift cases.
//
//===----------------------------------------------------------------------===//

#include "analysis/Auditor.h"
#include "baseline/Baselines.h"
#include "baseline/LazyCodeMotion.h"
#include "cfg/CfgBuilder.h"
#include "comm/CommGen.h"
#include "dataflow/Dump.h"
#include "frontend/Parser.h"
#include "interval/IntervalFlowGraph.h"
#include "pre/ExprPre.h"
#include "sim/TraceSimulator.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace gnt;

namespace {

struct Options {
  std::string File;
  bool Annotate = true;
  bool Pre = false;
  bool Dot = false;
  bool Ifg = false;
  bool Stats = false;
  bool Verify = false;
  bool Audit = false;
  bool AuditJson = false;
  bool Werror = false;
  bool DumpVars = false;
  long long SimulateN = -1;
  std::string Baseline;
  CommOptions Comm;
};

/// Keep this table exhaustive: every flag parseArgs() accepts is listed
/// here, one line per option.
void usage(std::FILE *To) {
  std::fprintf(
      To,
      "usage: gntc [options] FILE      (FILE may be `-` for stdin)\n"
      "\n"
      "views:\n"
      "  --annotate        print the annotated program (default)\n"
      "  --pre             run expression PRE instead of communication\n"
      "  --dot             print the control flow graph in Graphviz form\n"
      "  --ifg             print the interval flow graph structure\n"
      "  --stats           print static placement counts\n"
      "  --dump-vars       print every dataflow variable per node\n"
      "                    (Section 4 style) for the READ/WRITE problems\n"
      "  --simulate N      execute with parameter n = N and print metrics\n"
      "\n"
      "placement options:\n"
      "  --atomic          fuse send/receive pairs (library-call style)\n"
      "  --owner-computes  definitions happen at owners (no WRITEs,\n"
      "                    no free reads)\n"
      "  --no-hoist        disable zero-trip hoisting\n"
      "  --baseline B      use a baseline instead: naive | vectorized | lcm\n"
      "\n"
      "checking:\n"
      "  --verify          check C1/C3/O1 and exit nonzero on violations\n"
      "  --audit           run the full static audit (structure, C1/C3,\n"
      "                    O1/O2/O3/O3', differential re-derivation)\n"
      "  --audit-json      like --audit, printing JSON diagnostics on stdout\n"
      "  --werror          treat audit/verify warnings and notes as errors\n"
      "\n"
      "  --help            print this help\n");
}

bool parseArgs(int Argc, char **Argv, Options &O, int &Exit) {
  Exit = 2;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--annotate") {
      O.Annotate = true;
    } else if (A == "--pre") {
      O.Pre = true;
    } else if (A == "--dot") {
      O.Dot = true;
      O.Annotate = false;
    } else if (A == "--ifg") {
      O.Ifg = true;
      O.Annotate = false;
    } else if (A == "--stats") {
      O.Stats = true;
    } else if (A == "--verify") {
      O.Verify = true;
    } else if (A == "--audit") {
      O.Audit = true;
      O.Annotate = false;
    } else if (A == "--audit-json") {
      O.Audit = true;
      O.AuditJson = true;
      O.Annotate = false;
    } else if (A == "--werror") {
      O.Werror = true;
    } else if (A == "--dump-vars") {
      O.DumpVars = true;
    } else if (A == "--atomic") {
      O.Comm.Atomic = true;
    } else if (A == "--owner-computes") {
      O.Comm.OwnerComputes = true;
    } else if (A == "--no-hoist") {
      O.Comm.HoistZeroTrip = false;
    } else if (A == "--simulate") {
      if (++I == Argc) {
        std::fprintf(stderr, "gntc: --simulate needs a value\n");
        return false;
      }
      char *End = nullptr;
      O.SimulateN = std::strtoll(Argv[I], &End, 10);
      if (End == Argv[I] || *End != '\0' || O.SimulateN < 0) {
        std::fprintf(stderr,
                     "gntc: --simulate needs a non-negative integer, got %s\n",
                     Argv[I]);
        return false;
      }
    } else if (A == "--baseline") {
      if (++I == Argc) {
        std::fprintf(stderr, "gntc: --baseline needs a value\n");
        return false;
      }
      O.Baseline = Argv[I];
    } else if (A == "--help") {
      usage(stdout);
      Exit = 0;
      return false;
    } else if (!A.empty() && A[0] == '-' && A != "-") {
      std::fprintf(stderr, "gntc: unknown option %s\n", A.c_str());
      return false;
    } else {
      O.File = A;
    }
  }
  if (O.File.empty()) {
    std::fprintf(stderr, "gntc: no input file\n");
    return false;
  }
  return true;
}

std::string readInput(const std::string &File) {
  if (File == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    return SS.str();
  }
  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "gntc: cannot open %s\n", File.c_str());
    std::exit(1);
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Prints verifier diagnostics (errors after any --werror promotion) and
/// converts the outcome to an exit code.
int finishVerify(GntVerifyResult V, const Options &O) {
  if (O.Werror)
    V.Diags.promoteToErrors();
  for (const Diagnostic &D : V.Diags.all())
    if (D.Severity == DiagSeverity::Error)
      std::fprintf(stderr, "gntc: %s\n", D.render().c_str());
  return V.ok() ? 0 : 1;
}

/// Audits every solver run in sight, merges the findings, renders them
/// (text on stderr, or JSON on stdout with --audit-json) and converts
/// the outcome to an exit code.
class AuditDriver {
public:
  explicit AuditDriver(const Options &O) : O(O) {}

  void add(const GntRun &Run, const std::vector<std::string> &Names,
           const char *Label) {
    AuditResult A = auditGntRun(Run, Names);
    for (Diagnostic D : A.Diags.all()) {
      // Qualify findings with the problem they belong to.
      D.Message = std::string(Label) + ": " + D.Message;
      All.add(std::move(D));
    }
    Solves += A.Stats.EngineSolves;
    Sweeps += A.Stats.ReferenceSweeps;
  }

  int finish() {
    if (O.Werror)
      All.promoteToErrors();
    if (O.AuditJson) {
      std::fputs(All.renderJson().c_str(), stdout);
      std::fputc('\n', stdout);
    } else {
      for (const Diagnostic &D : All.all())
        std::fprintf(stderr, "gntc: %s\n", D.render().c_str());
      std::fprintf(stderr,
                   "gntc: audit: %u errors, %u warnings, %u notes "
                   "(%u dataflow solves, %u reference sweeps)\n",
                   All.count(DiagSeverity::Error),
                   All.count(DiagSeverity::Warning),
                   All.count(DiagSeverity::Note), Solves, Sweeps);
    }
    return All.hasErrors() ? 1 : 0;
  }

private:
  const Options &O;
  DiagnosticSet All;
  unsigned Solves = 0;
  unsigned Sweeps = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  int Exit = 2;
  if (!parseArgs(Argc, Argv, O, Exit)) {
    if (Exit != 0)
      usage(stderr);
    return Exit;
  }

  std::string Source = readInput(O.File);
  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.success()) {
    for (const std::string &E : Parsed.Errors)
      std::fprintf(stderr, "gntc: %s\n", E.c_str());
    return 1;
  }
  CfgBuildResult CfgRes = buildCfg(Parsed.Prog);
  if (!CfgRes.success()) {
    for (const std::string &E : CfgRes.Errors)
      std::fprintf(stderr, "gntc: %s\n", E.c_str());
    return 1;
  }
  if (O.Dot) {
    std::fputs(CfgRes.G.dot().c_str(), stdout);
    return 0;
  }
  auto IfgRes = IntervalFlowGraph::build(CfgRes.G);
  if (!IfgRes.success()) {
    for (const std::string &E : IfgRes.Errors)
      std::fprintf(stderr, "gntc: %s\n", E.c_str());
    return 1;
  }
  if (O.Ifg) {
    std::fputs(IfgRes.Ifg->describe(CfgRes.G).c_str(), stdout);
    return 0;
  }

  if (O.Pre) {
    ExprPreResult Pre = runExprPre(Parsed.Prog, CfgRes.G, *IfgRes.Ifg);
    if (O.Audit) {
      AuditDriver Audit(O);
      Audit.add(Pre.Run, Pre.Exprs, "PRE");
      return Audit.finish();
    }
    std::fputs(Pre.annotate(Parsed.Prog).c_str(), stdout);
    if (O.Stats)
      std::printf("! %zu insertions, %zu redundant occurrences\n",
                  Pre.Insertions.size(), Pre.Redundant.size());
    if (O.Verify)
      return finishVerify(Pre.verify(), O);
    return 0;
  }

  CommPlan Plan;
  if (O.Baseline == "naive")
    Plan = naivePlacement(Parsed.Prog, CfgRes.G, *IfgRes.Ifg);
  else if (O.Baseline == "vectorized")
    Plan = vectorizedPlacement(Parsed.Prog, CfgRes.G, *IfgRes.Ifg);
  else if (O.Baseline == "lcm")
    Plan = lcmPlacement(Parsed.Prog, CfgRes.G, *IfgRes.Ifg);
  else if (O.Baseline.empty())
    Plan = generateComm(Parsed.Prog, CfgRes.G, *IfgRes.Ifg, O.Comm);
  else {
    std::fprintf(stderr, "gntc: unknown baseline %s\n", O.Baseline.c_str());
    return 2;
  }

  if (O.Audit) {
    // Baseline plans carry no GNT dataflow runs, so there is nothing for
    // the auditor to re-check; reject instead of printing a vacuous pass.
    if (!Plan.ReadRun && !Plan.WriteRun) {
      std::fprintf(stderr,
                   "gntc: --audit requires a GIVE-N-TAKE plan "
                   "(baseline `%s` has no dataflow runs to audit)\n",
                   O.Baseline.c_str());
      return 2;
    }
    AuditDriver Audit(O);
    std::vector<std::string> Names = Plan.Refs.Items.names();
    if (Plan.ReadRun)
      Audit.add(*Plan.ReadRun, Names, "READ");
    if (Plan.WriteRun)
      Audit.add(*Plan.WriteRun, Names, "WRITE");
    return Audit.finish();
  }

  if (O.Annotate)
    std::fputs(Plan.annotate(Parsed.Prog).c_str(), stdout);

  if (O.DumpVars) {
    std::vector<std::string> Names = Plan.Refs.Items.names();
    if (Plan.ReadRun) {
      std::printf("\n--- READ problem ---\n");
      std::fputs(dumpGntRun(*Plan.ReadRun, CfgRes.G, Names).c_str(), stdout);
    }
    if (Plan.WriteRun) {
      std::printf("\n--- WRITE problem ---\n");
      std::fputs(dumpGntRun(*Plan.WriteRun, CfgRes.G, Names).c_str(),
                 stdout);
    }
  }

  if (O.Stats) {
    auto Counts = Plan.staticCounts();
    std::printf("! static placements:");
    for (const auto &[Kind, Count] : Counts)
      std::printf(" %s=%u", commOpName(Kind), Count);
    std::printf("\n");
  }

  if (O.SimulateN >= 0) {
    SimConfig Config;
    Config.Params["n"] = O.SimulateN;
    SimStats S = simulate(Parsed.Prog, Plan, Config);
    std::printf("! simulate n=%lld: messages=%llu volume=%llu exposed=%.0f "
                "work=%.0f wasted=%llu redundant=%llu %s\n",
                O.SimulateN, S.Messages, S.Volume, S.ExposedLatency, S.Work,
                S.Wasted, S.Redundant,
                S.ok() ? "ok" : S.Errors.front().c_str());
    if (!S.ok())
      return 1;
  }

  if (O.Verify)
    return finishVerify(Plan.verify(), O);
  return 0;
}
