//===- tools/gntc.cpp - GIVE-N-TAKE command line driver ---------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// gntc: analyze an FMini program and print the communication-annotated
// form (or other views of the pipeline).
//
//   gntc [options] file.fm        (or `-` for stdin)
//
// Options:
//   --annotate       print the annotated program (default)
//   --pre            run expression PRE instead of communication
//   --dot            print the control flow graph in Graphviz form
//   --ifg            print the interval flow graph structure
//   --stats          print static placement counts
//   --simulate N     execute with parameter n = N and print metrics
//   --atomic         fuse send/receive pairs (library-call style)
//   --owner-computes definitions happen at owners (no WRITEs, no free reads)
//   --no-hoist       disable zero-trip hoisting
//   --baseline B     use a baseline instead: naive | vectorized | lcm
//   --verify         check C1/C3/O1 and exit nonzero on violations
//   --dump-vars      print every dataflow variable per node (Section 4
//                    style) for the READ and WRITE problems
//
//===----------------------------------------------------------------------===//

#include "baseline/Baselines.h"
#include "baseline/LazyCodeMotion.h"
#include "cfg/CfgBuilder.h"
#include "comm/CommGen.h"
#include "dataflow/Dump.h"
#include "frontend/Parser.h"
#include "interval/IntervalFlowGraph.h"
#include "pre/ExprPre.h"
#include "sim/TraceSimulator.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace gnt;

namespace {

struct Options {
  std::string File;
  bool Annotate = true;
  bool Pre = false;
  bool Dot = false;
  bool Ifg = false;
  bool Stats = false;
  bool Verify = false;
  bool DumpVars = false;
  long long SimulateN = -1;
  std::string Baseline;
  CommOptions Comm;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: gntc [--annotate|--pre|--dot|--ifg] [--stats] [--verify]\n"
      "            [--simulate N] [--atomic] [--owner-computes]\n"
      "            [--no-hoist] [--baseline naive|vectorized|lcm] FILE\n");
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--annotate") {
      O.Annotate = true;
    } else if (A == "--pre") {
      O.Pre = true;
    } else if (A == "--dot") {
      O.Dot = true;
      O.Annotate = false;
    } else if (A == "--ifg") {
      O.Ifg = true;
      O.Annotate = false;
    } else if (A == "--stats") {
      O.Stats = true;
    } else if (A == "--verify") {
      O.Verify = true;
    } else if (A == "--dump-vars") {
      O.DumpVars = true;
    } else if (A == "--atomic") {
      O.Comm.Atomic = true;
    } else if (A == "--owner-computes") {
      O.Comm.OwnerComputes = true;
    } else if (A == "--no-hoist") {
      O.Comm.HoistZeroTrip = false;
    } else if (A == "--simulate") {
      if (++I == Argc)
        return false;
      O.SimulateN = std::atoll(Argv[I]);
    } else if (A == "--baseline") {
      if (++I == Argc)
        return false;
      O.Baseline = Argv[I];
    } else if (!A.empty() && A[0] == '-' && A != "-") {
      std::fprintf(stderr, "gntc: unknown option %s\n", A.c_str());
      return false;
    } else {
      O.File = A;
    }
  }
  return !O.File.empty();
}

std::string readInput(const std::string &File) {
  if (File == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    return SS.str();
  }
  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "gntc: cannot open %s\n", File.c_str());
    std::exit(1);
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O)) {
    usage();
    return 2;
  }

  std::string Source = readInput(O.File);
  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.success()) {
    for (const std::string &E : Parsed.Errors)
      std::fprintf(stderr, "gntc: %s\n", E.c_str());
    return 1;
  }
  CfgBuildResult CfgRes = buildCfg(Parsed.Prog);
  if (!CfgRes.success()) {
    for (const std::string &E : CfgRes.Errors)
      std::fprintf(stderr, "gntc: %s\n", E.c_str());
    return 1;
  }
  if (O.Dot) {
    std::fputs(CfgRes.G.dot().c_str(), stdout);
    return 0;
  }
  auto IfgRes = IntervalFlowGraph::build(CfgRes.G);
  if (!IfgRes.success()) {
    for (const std::string &E : IfgRes.Errors)
      std::fprintf(stderr, "gntc: %s\n", E.c_str());
    return 1;
  }
  if (O.Ifg) {
    std::fputs(IfgRes.Ifg->describe(CfgRes.G).c_str(), stdout);
    return 0;
  }

  if (O.Pre) {
    ExprPreResult Pre = runExprPre(Parsed.Prog, CfgRes.G, *IfgRes.Ifg);
    std::fputs(Pre.annotate(Parsed.Prog).c_str(), stdout);
    if (O.Stats)
      std::printf("! %zu insertions, %zu redundant occurrences\n",
                  Pre.Insertions.size(), Pre.Redundant.size());
    if (O.Verify) {
      GntVerifyResult V = Pre.verify();
      for (const std::string &Msg : V.Violations)
        std::fprintf(stderr, "gntc: %s\n", Msg.c_str());
      return V.ok() ? 0 : 1;
    }
    return 0;
  }

  CommPlan Plan;
  if (O.Baseline == "naive")
    Plan = naivePlacement(Parsed.Prog, CfgRes.G, *IfgRes.Ifg);
  else if (O.Baseline == "vectorized")
    Plan = vectorizedPlacement(Parsed.Prog, CfgRes.G, *IfgRes.Ifg);
  else if (O.Baseline == "lcm")
    Plan = lcmPlacement(Parsed.Prog, CfgRes.G, *IfgRes.Ifg);
  else if (O.Baseline.empty())
    Plan = generateComm(Parsed.Prog, CfgRes.G, *IfgRes.Ifg, O.Comm);
  else {
    std::fprintf(stderr, "gntc: unknown baseline %s\n", O.Baseline.c_str());
    return 2;
  }

  if (O.Annotate)
    std::fputs(Plan.annotate(Parsed.Prog).c_str(), stdout);

  if (O.DumpVars) {
    std::vector<std::string> Names = Plan.Refs.Items.names();
    if (Plan.ReadRun) {
      std::printf("\n--- READ problem ---\n");
      std::fputs(dumpGntRun(*Plan.ReadRun, CfgRes.G, Names).c_str(), stdout);
    }
    if (Plan.WriteRun) {
      std::printf("\n--- WRITE problem ---\n");
      std::fputs(dumpGntRun(*Plan.WriteRun, CfgRes.G, Names).c_str(),
                 stdout);
    }
  }

  if (O.Stats) {
    auto Counts = Plan.staticCounts();
    std::printf("! static placements:");
    for (const auto &[Kind, Count] : Counts)
      std::printf(" %s=%u", commOpName(Kind), Count);
    std::printf("\n");
  }

  if (O.SimulateN >= 0) {
    SimConfig Config;
    Config.Params["n"] = O.SimulateN;
    SimStats S = simulate(Parsed.Prog, Plan, Config);
    std::printf("! simulate n=%lld: messages=%llu volume=%llu exposed=%.0f "
                "work=%.0f wasted=%llu redundant=%llu %s\n",
                O.SimulateN, S.Messages, S.Volume, S.ExposedLatency, S.Work,
                S.Wasted, S.Redundant,
                S.ok() ? "ok" : S.Errors.front().c_str());
    if (!S.ok())
      return 1;
  }

  if (O.Verify) {
    GntVerifyResult V = Plan.verify();
    for (const std::string &Msg : V.Violations)
      std::fprintf(stderr, "gntc: %s\n", Msg.c_str());
    return V.ok() ? 0 : 1;
  }
  return 0;
}
