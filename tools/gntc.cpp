//===- tools/gntc.cpp - GIVE-N-TAKE command line driver ---------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// gntc: analyze an FMini program and print the communication-annotated
// form (or other views of the pipeline).
//
//   gntc [options] file.fm        (or `-` for stdin)
//
// The heavy lifting lives in the service Pipeline (service/Pipeline.h),
// which gntc shares with the gntd batch server; this file is argument
// parsing plus output formatting over the PipelineResult artifacts.
//
// The option table lives in usage() below and must stay in sync with
// parseArgs(); ToolCliTest checks the obvious drift cases.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Dump.h"
#include "service/Pipeline.h"
#include "service/StageCache.h"
#include "sim/TraceSimulator.h"
#include "support/Json.h"
#include "support/SimdKernels.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

using namespace gnt;

namespace {

struct Options {
  std::string File;
  bool Dot = false;
  bool Ifg = false;
  bool Stats = false;
  bool AuditJson = false;
  bool DumpVars = false;
  bool AnalyzeJson = false;
  long long SimulateN = -1;
  bool EmitProfile = false;
  std::string ProfileFile;
  /// --analyze arguments as given: built-in names, `all`, or @FILE
  /// references (expanded in main once the files can be read).
  std::vector<std::string> Analyses;
  PipelineOptions Pipe;
};

/// Keep this table exhaustive: every flag parseArgs() accepts is listed
/// here, one line per option.
void usage(std::FILE *To) {
  std::fprintf(
      To,
      "usage: gntc [options] FILE      (FILE may be `-` for stdin)\n"
      "\n"
      "views:\n"
      "  --annotate        print the annotated program (default)\n"
      "  --pre             run expression PRE instead of communication\n"
      "  --dot             print the control flow graph in Graphviz form\n"
      "  --ifg             print the interval flow graph structure\n"
      "  --stats           print static placement counts\n"
      "  --dump-vars       print every dataflow variable per node\n"
      "                    (Section 4 style) for the READ/WRITE problems\n"
      "  --simulate N      execute with parameter n = N and print metrics\n"
      "\n"
      "placement options:\n"
      "  --atomic          fuse send/receive pairs (library-call style)\n"
      "  --owner-computes  definitions happen at owners (no WRITEs,\n"
      "                    no free reads)\n"
      "  --no-hoist        disable zero-trip hoisting\n"
      "  --baseline B      use a baseline instead: naive | vectorized | lcm\n"
      "  --strategy S      placement strategy for the GIVE-N-TAKE engine:\n"
      "                    balanced (default) | speculative | lospre\n"
      "  --profile FILE    gnt-profile-v1 execution profile consumed by\n"
      "                    --strategy speculative (`-` for stdin)\n"
      "  --emit-profile    with --simulate: print the run's execution\n"
      "                    profile (gnt-profile-v1) instead of metrics\n"
      "  --solver-shards N solve the item universe in N word-aligned\n"
      "                    shards in parallel (output is byte-identical\n"
      "                    to the serial solve for every N)\n"
      "  --compress-universe[=off]\n"
      "                    solve over item equivalence classes instead of\n"
      "                    the full universe (byte-identical output;\n"
      "                    =off restores the uncompressed solve)\n"
      "  --incremental     solve through a content-addressed stage cache\n"
      "                    with interval-level incremental re-solving\n"
      "                    (byte-identical output; one-shot runs populate\n"
      "                    the memo, servers reap the reuse)\n"
      "\n"
      "analyses:\n"
      "  --analyze A       run a user-specified dataflow analysis and print\n"
      "                    its per-node solution; A is a built-in name\n"
      "                    (liveness | availability | very-busy | reaching),\n"
      "                    `all` for every built-in, or @FILE to read a\n"
      "                    spec file; repeatable; solved on both the\n"
      "                    iterative engine and the arena solver with a\n"
      "                    mandatory byte-identity differential\n"
      "  --analyze-json    print analysis results as JSON with statistics\n"
      "\n"
      "checking:\n"
      "  --verify          check C1/C3/O1 and exit nonzero on violations\n"
      "  --audit           run the full static audit (structure, C1/C3,\n"
      "                    O1/O2/O3/O3', differential re-derivation)\n"
      "  --audit-json      like --audit, printing JSON diagnostics on stdout\n"
      "  --werror          treat audit/verify warnings and notes as errors\n"
      "\n"
      "  --list-kernels    print the solver kernel variants this binary\n"
      "                    can run on this machine, marking the active\n"
      "                    one (GNT_KERNEL=scalar|avx2|avx512|neon\n"
      "                    overrides the automatic selection)\n"
      "  --help            print this help\n");
}

/// Classic Levenshtein distance, small inputs only (flag names).
unsigned editDistance(const std::string &A, const std::string &B) {
  std::vector<unsigned> Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Row[J] = static_cast<unsigned>(J);
  for (size_t I = 1; I <= A.size(); ++I) {
    unsigned Diag = Row[0];
    Row[0] = static_cast<unsigned>(I);
    for (size_t J = 1; J <= B.size(); ++J) {
      unsigned Next = std::min({Row[J] + 1, Row[J - 1] + 1,
                                Diag + (A[I - 1] == B[J - 1] ? 0u : 1u)});
      Diag = Row[J];
      Row[J] = Next;
    }
  }
  return Row[B.size()];
}

/// Every flag parseArgs() accepts, for the did-you-mean suggestion.
const char *const KnownFlags[] = {
    "--annotate",      "--pre",
    "--dot",           "--ifg",
    "--stats",         "--dump-vars",
    "--simulate",      "--atomic",
    "--owner-computes", "--no-hoist",
    "--baseline",      "--strategy",
    "--profile",       "--emit-profile",
    "--solver-shards",
    "--compress-universe", "--compress-universe=off",
    "--incremental",
    "--analyze",       "--analyze-json",
    "--verify",        "--audit",
    "--audit-json",    "--werror",
    "--list-kernels",  "--help",
};

/// Nearest known flag within edit distance 2 of \p A, or empty.
std::string nearestFlag(const std::string &A) {
  std::string Best;
  unsigned BestDist = 3;
  for (const char *Flag : KnownFlags) {
    unsigned D = editDistance(A, Flag);
    if (D < BestDist) {
      BestDist = D;
      Best = Flag;
    }
  }
  return Best;
}

bool parseArgs(int Argc, char **Argv, Options &O, int &Exit) {
  Exit = 2;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--annotate") {
      O.Pipe.Annotate = true;
    } else if (A == "--pre") {
      O.Pipe.Mode = PipelineMode::Pre;
    } else if (A == "--dot") {
      O.Dot = true;
      O.Pipe.Annotate = false;
      O.Pipe.StopAfter = PipelineStop::AfterCfg;
    } else if (A == "--ifg") {
      O.Ifg = true;
      O.Pipe.Annotate = false;
      O.Pipe.StopAfter = PipelineStop::AfterInterval;
    } else if (A == "--stats") {
      O.Stats = true;
    } else if (A == "--verify") {
      O.Pipe.Verify = true;
    } else if (A == "--audit") {
      O.Pipe.Audit = true;
      O.Pipe.Annotate = false;
    } else if (A == "--audit-json") {
      O.Pipe.Audit = true;
      O.AuditJson = true;
      O.Pipe.Annotate = false;
    } else if (A == "--werror") {
      O.Pipe.Werror = true;
    } else if (A == "--dump-vars") {
      O.DumpVars = true;
    } else if (A == "--atomic") {
      O.Pipe.Comm.Atomic = true;
    } else if (A == "--owner-computes") {
      O.Pipe.Comm.OwnerComputes = true;
    } else if (A == "--no-hoist") {
      O.Pipe.Comm.HoistZeroTrip = false;
    } else if (A == "--simulate") {
      if (++I == Argc) {
        std::fprintf(stderr, "gntc: --simulate needs a value\n");
        return false;
      }
      char *End = nullptr;
      O.SimulateN = std::strtoll(Argv[I], &End, 10);
      if (End == Argv[I] || *End != '\0' || O.SimulateN < 0) {
        std::fprintf(stderr,
                     "gntc: --simulate needs a non-negative integer, got %s\n",
                     Argv[I]);
        return false;
      }
    } else if (A == "--baseline") {
      if (++I == Argc) {
        std::fprintf(stderr, "gntc: --baseline needs a value\n");
        return false;
      }
      O.Pipe.Baseline = Argv[I];
    } else if (A == "--strategy") {
      if (++I == Argc) {
        std::fprintf(stderr, "gntc: --strategy needs a value\n");
        return false;
      }
      if (!parsePlacementStrategy(Argv[I], O.Pipe.Strategy)) {
        std::fprintf(stderr,
                     "gntc: unknown strategy %s (balanced | speculative | "
                     "lospre)\n",
                     Argv[I]);
        return false;
      }
    } else if (A == "--profile") {
      if (++I == Argc) {
        std::fprintf(stderr, "gntc: --profile needs a file\n");
        return false;
      }
      O.ProfileFile = Argv[I];
    } else if (A == "--emit-profile") {
      O.EmitProfile = true;
      O.Pipe.Annotate = false;
    } else if (A == "--solver-shards") {
      if (++I == Argc) {
        std::fprintf(stderr, "gntc: --solver-shards needs a value\n");
        return false;
      }
      char *End = nullptr;
      long long Shards = std::strtoll(Argv[I], &End, 10);
      if (End == Argv[I] || *End != '\0' || Shards < 0 || Shards > 65536) {
        std::fprintf(
            stderr,
            "gntc: --solver-shards needs an integer in [0, 65536], got %s\n",
            Argv[I]);
        return false;
      }
      O.Pipe.SolverShards = static_cast<unsigned>(Shards);
    } else if (A == "--compress-universe") {
      O.Pipe.CompressUniverse = true;
    } else if (A == "--compress-universe=off") {
      O.Pipe.CompressUniverse = false;
    } else if (A == "--incremental") {
      O.Pipe.Incremental = true;
    } else if (A == "--analyze") {
      if (++I == Argc) {
        std::fprintf(stderr, "gntc: --analyze needs a value\n");
        return false;
      }
      O.Analyses.push_back(Argv[I]);
      O.Pipe.Annotate = false;
    } else if (A == "--analyze-json") {
      O.AnalyzeJson = true;
    } else if (A == "--list-kernels") {
      // Resolves the selection exactly the way a solve would (including
      // the GNT_KERNEL override), so what this prints is what runs.
      const char *Active = solverKernelName();
      for (const SolverKernels *K : availableSolverKernels())
        std::printf("%s%s\n", K->Name,
                    std::strcmp(K->Name, Active) == 0 ? " (active)" : "");
      Exit = 0;
      return false;
    } else if (A == "--help") {
      usage(stdout);
      Exit = 0;
      return false;
    } else if (!A.empty() && A[0] == '-' && A != "-") {
      std::string Near = nearestFlag(A);
      if (Near.empty())
        std::fprintf(stderr, "gntc: unknown option %s\n", A.c_str());
      else
        std::fprintf(stderr, "gntc: unknown option %s (did you mean %s?)\n",
                     A.c_str(), Near.c_str());
      return false;
    } else {
      O.File = A;
    }
  }
  if (O.File.empty()) {
    std::fprintf(stderr, "gntc: no input file\n");
    return false;
  }
  return true;
}

std::string readInput(const std::string &File) {
  if (File == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    return SS.str();
  }
  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "gntc: cannot open %s\n", File.c_str());
    std::exit(1);
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// True for diagnostics produced before any placement ran (parse and
/// CFG/interval construction failures).
bool isFrontendDiag(const Diagnostic &D) {
  return D.Check == CheckId::Parse || D.Check == CheckId::Build;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  int Exit = 2;
  if (!parseArgs(Argc, Argv, O, Exit)) {
    if (Exit != 0)
      usage(stderr);
    return Exit;
  }

  // Reject option combinations the pipeline would only discover late,
  // with the tool's historical exit code 2.
  if (!O.Pipe.Baseline.empty() && O.Pipe.Baseline != "naive" &&
      O.Pipe.Baseline != "vectorized" && O.Pipe.Baseline != "lcm") {
    std::fprintf(stderr, "gntc: unknown baseline %s\n",
                 O.Pipe.Baseline.c_str());
    return 2;
  }
  if (O.Pipe.Strategy != PlacementStrategy::Balanced &&
      !O.Pipe.Baseline.empty()) {
    std::fprintf(stderr,
                 "gntc: --strategy %s conflicts with --baseline %s "
                 "(baselines bypass the GIVE-N-TAKE engine)\n",
                 placementStrategyName(O.Pipe.Strategy),
                 O.Pipe.Baseline.c_str());
    return 2;
  }
  if (O.Pipe.Strategy != PlacementStrategy::Balanced &&
      O.Pipe.Mode == PipelineMode::Pre) {
    std::fprintf(stderr, "gntc: --strategy applies to communication "
                         "placement, not --pre\n");
    return 2;
  }
  if (O.EmitProfile && O.SimulateN < 0) {
    std::fprintf(stderr, "gntc: --emit-profile requires --simulate\n");
    return 2;
  }
  if (O.Pipe.Audit && !O.Pipe.Baseline.empty() &&
      O.Pipe.Mode == PipelineMode::Comm) {
    // Baseline plans carry no GNT dataflow runs, so there is nothing for
    // the auditor to re-check; reject instead of printing a vacuous pass.
    std::fprintf(stderr,
                 "gntc: --audit requires a GIVE-N-TAKE plan "
                 "(baseline `%s` has no dataflow runs to audit)\n",
                 O.Pipe.Baseline.c_str());
    return 2;
  }

  // Expand --analyze arguments: `all` means every built-in, @FILE reads
  // a spec file, anything else passes through (name or inline text).
  for (const std::string &Entry : O.Analyses) {
    if (Entry == "all") {
      for (const auto &[Name, Text] : builtinAnalysisSpecs())
        O.Pipe.ExtraAnalyses.push_back(Name);
    } else if (!Entry.empty() && Entry[0] == '@') {
      O.Pipe.ExtraAnalyses.push_back(readInput(Entry.substr(1)));
    } else {
      O.Pipe.ExtraAnalyses.push_back(Entry);
    }
  }

  if (!O.ProfileFile.empty())
    O.Pipe.Profile = readInput(O.ProfileFile);

  std::string Source = readInput(O.File);
  // --incremental compiles through a process-local stage cache; a
  // one-shot run sees no reuse but exercises the identical code path
  // the server uses (and the byte-identity contract with it).
  StageCache Stages;
  PipelineResult R = Pipeline(O.Pipe).compile(
      Source, O.Pipe.Incremental ? &Stages : nullptr);

  // Parse or CFG/interval construction failures end the run.
  if (!R.ok()) {
    bool Frontend = false;
    for (const Diagnostic &D : R.Diags.all())
      if (isFrontendDiag(D)) {
        std::fprintf(stderr, "gntc: %s\n", D.Message.c_str());
        Frontend = true;
      }
    if (Frontend)
      return 1;
  }

  if (O.Dot) {
    std::fputs(R.G.dot().c_str(), stdout);
    return 0;
  }
  if (O.Ifg) {
    std::fputs(R.Ifg->describe(R.G).c_str(), stdout);
    return 0;
  }

  if (O.Pipe.Audit) {
    if (O.AuditJson) {
      // Attach the engine convergence statistics as one extra
      // top-level member next to the diagnostics.
      JsonWriter Engine;
      Engine.beginObject();
      Engine.key("solves").value(R.Audit.EngineSolves);
      Engine.key("iterations").value(R.Audit.Engine.Iterations);
      Engine.key("node_visits").value(R.Audit.Engine.NodeVisits);
      Engine.key("edge_evaluations").value(R.Audit.Engine.EdgeEvaluations);
      Engine.key("worklist_peak").value(R.Audit.Engine.WorklistPeak);
      Engine.key("reference_sweeps").value(R.Audit.ReferenceSweeps);
      Engine.endObject();
      std::fputs(R.Diags.renderJson("engine", Engine.str()).c_str(), stdout);
      std::fputc('\n', stdout);
    } else {
      for (const Diagnostic &D : R.Diags.all())
        std::fprintf(stderr, "gntc: %s\n", D.render().c_str());
      std::fprintf(stderr,
                   "gntc: audit: %u errors, %u warnings, %u notes "
                   "(%u dataflow solves, %u reference sweeps)\n",
                   R.Diags.count(DiagSeverity::Error),
                   R.Diags.count(DiagSeverity::Warning),
                   R.Diags.count(DiagSeverity::Note), R.Audit.EngineSolves,
                   R.Audit.ReferenceSweeps);
    }
    return R.ok() ? 0 : 1;
  }

  if (!O.Pipe.ExtraAnalyses.empty()) {
    for (const AnalysisRun &A : R.Analyses) {
      if (O.AnalyzeJson) {
        std::fputs(A.renderJson(/*IncludeStats=*/true).c_str(), stdout);
        std::fputc('\n', stdout);
      } else {
        std::fputs(A.renderText().c_str(), stdout);
      }
    }
    for (const Diagnostic &D : R.Diags.all())
      if (D.Severity == DiagSeverity::Error)
        std::fprintf(stderr, "gntc: %s\n", D.render().c_str());
    return R.ok() ? 0 : 1;
  }

  // A compile that failed past the frontend (strategy/profile errors)
  // produced no plan to print, count, or simulate.
  if (!R.ok() && !R.Plan && !R.Pre) {
    for (const Diagnostic &D : R.Diags.all())
      if (D.Severity == DiagSeverity::Error)
        std::fprintf(stderr, "gntc: %s\n", D.render().c_str());
    return 1;
  }

  if (O.Pipe.Annotate)
    std::fputs(R.Annotated.c_str(), stdout);

  if (O.Pipe.Mode == PipelineMode::Pre) {
    if (O.Stats)
      std::printf("! %zu insertions, %zu redundant occurrences\n",
                  R.Pre->Insertions.size(), R.Pre->Redundant.size());
  } else {
    if (O.DumpVars) {
      std::vector<std::string> Names = R.Plan->Refs.Items.names();
      if (R.Plan->ReadRun) {
        std::printf("\n--- READ problem ---\n");
        std::fputs(dumpGntRun(*R.Plan->ReadRun, R.G, Names).c_str(), stdout);
      }
      if (R.Plan->WriteRun) {
        std::printf("\n--- WRITE problem ---\n");
        std::fputs(dumpGntRun(*R.Plan->WriteRun, R.G, Names).c_str(), stdout);
      }
    }

    if (O.Stats) {
      auto Counts = R.Plan->staticCounts();
      std::printf("! static placements:");
      for (const auto &[Kind, Count] : Counts)
        std::printf(" %s=%u", commOpName(Kind), Count);
      std::printf("\n");
      if (R.CompressedUniverse > 0)
        std::printf("! universe compression: %u items -> %u classes "
                    "(ratio %.3f)\n",
                    R.CompressedUniverse, R.CompressedClasses,
                    R.compressionRatio());
    }

    if (O.SimulateN >= 0) {
      SimConfig Config;
      Config.Params["n"] = O.SimulateN;
      SimStats S = simulate(*R.Prog, *R.Plan, Config);
      if (O.EmitProfile) {
        std::fputs(renderExecProfile(S.Profile).c_str(), stdout);
        return S.ok() ? 0 : 1;
      }
      std::printf("! simulate n=%lld: messages=%llu volume=%llu exposed=%.0f "
                  "work=%.0f wasted=%llu redundant=%llu %s\n",
                  O.SimulateN, S.Messages, S.Volume, S.ExposedLatency, S.Work,
                  S.Wasted, S.Redundant,
                  S.ok() ? "ok" : S.Errors.front().c_str());
      if (!S.ok())
        return 1;
    }
  }

  if (O.Pipe.Verify) {
    for (const Diagnostic &D : R.Diags.all())
      if (D.Severity == DiagSeverity::Error)
        std::fprintf(stderr, "gntc: %s\n", D.render().c_str());
    return R.ok() ? 0 : 1;
  }
  return 0;
}
