//===- tools/gnt-fuzz.cpp - Metamorphic differential fuzzer CLI -------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Command-line driver for the fuzz library:
//
//   gnt-fuzz [--smoke] [--corpus DIR] [--out DIR] [--seed N]
//            [--max-inputs N] [--max-seconds X] [--verbose]
//   gnt-fuzz --distill FILE.fm     shrink a clean program, print result
//   gnt-fuzz --minimize FILE.fm    shrink a failing program, print result
//
// Exit codes: 0 no findings, 1 findings (repros written when --out is
// set), 2 usage or I/O error.
//
//===----------------------------------------------------------------------===//

#include "dataflow/GiveNTake.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Minimizer.h"
#include "fuzz/NetOracle.h"
#include "fuzz/Oracle.h"
#include "fuzz/SpecFuzz.h"
#include "gen/RandomProgram.h"
#include "ir/AstPrinter.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace gnt;
using namespace gnt::fuzz;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: gnt-fuzz [options]\n"
      "  --smoke             CI preset: 500 inputs, fail on any finding\n"
      "  --specs             fuzz the analysis-spec language instead of\n"
      "                      programs (linter totality + backend\n"
      "                      differential on generated programs)\n"
      "  --net               replay corpus programs through a live\n"
      "                      socket server and diff every response\n"
      "                      byte-for-byte against the serial stdio\n"
      "                      engine (uses --corpus, --seed,\n"
      "                      --max-inputs as the program budget)\n"
      "  --corpus DIR        seed corpus directory (*.fm)\n"
      "  --out DIR           write minimized repros here\n"
      "  --seed N            campaign seed (default 1)\n"
      "  --max-inputs N      oracle-checked input budget (default 500)\n"
      "  --max-seconds X     wall-clock budget (default none)\n"
      "  --minimize-budget N predicate budget per minimization\n"
      "  --stop-on-finding   stop the campaign at the first finding\n"
      "  --strategies        force the placement-strategy oracle layer\n"
      "                      on (lospre + profile-fed speculative per\n"
      "                      input; the default)\n"
      "  --no-strategies     skip the placement-strategy oracle layer\n"
      "  --distill FILE      shrink a clean program, print to stdout\n"
      "  --minimize FILE     shrink a failing program, print to stdout\n"
      "  --gen BUCKET        print the structure-bucket seed program for\n"
      "                      --seed (0..5, see gen/RandomProgram.h)\n"
      "  --inject-fused-sweep-bug  flip Eq. 14 in the arena fused sweep\n"
      "                      (test-only fault injection; the campaign\n"
      "                      must catch and minimize it)\n"
      "  --verbose           progress to stderr\n");
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "gnt-fuzz: cannot read %s\n", Path.c_str());
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

} // namespace

int main(int argc, char **argv) {
  FuzzOptions Opts;
  std::string DistillFile, MinimizeFile;
  int GenBucket = -1;
  bool SpecMode = false;
  bool NetMode = false;

  auto NextArg = [&](int &I) -> const char * {
    if (I + 1 >= argc) {
      std::fprintf(stderr, "gnt-fuzz: %s needs an argument\n", argv[I]);
      std::exit(2);
    }
    return argv[++I];
  };

  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    if (!std::strcmp(A, "--smoke")) {
      Opts.MaxInputs = 500;
      Opts.MinimizeBudget = 400;
    } else if (!std::strcmp(A, "--specs")) {
      SpecMode = true;
    } else if (!std::strcmp(A, "--net")) {
      NetMode = true;
    } else if (!std::strcmp(A, "--corpus")) {
      Opts.CorpusDir = NextArg(I);
    } else if (!std::strcmp(A, "--out")) {
      Opts.OutDir = NextArg(I);
    } else if (!std::strcmp(A, "--seed")) {
      Opts.Seed = static_cast<unsigned>(std::atoi(NextArg(I)));
    } else if (!std::strcmp(A, "--max-inputs")) {
      Opts.MaxInputs =
          static_cast<unsigned long long>(std::atoll(NextArg(I)));
    } else if (!std::strcmp(A, "--max-seconds")) {
      Opts.MaxSeconds = std::atof(NextArg(I));
    } else if (!std::strcmp(A, "--minimize-budget")) {
      Opts.MinimizeBudget = static_cast<unsigned>(std::atoi(NextArg(I)));
    } else if (!std::strcmp(A, "--stop-on-finding")) {
      Opts.StopOnFinding = true;
    } else if (!std::strcmp(A, "--strategies")) {
      Opts.Oracle.Strategies = true;
    } else if (!std::strcmp(A, "--no-strategies")) {
      Opts.Oracle.Strategies = false;
    } else if (!std::strcmp(A, "--distill")) {
      DistillFile = NextArg(I);
    } else if (!std::strcmp(A, "--minimize")) {
      MinimizeFile = NextArg(I);
    } else if (!std::strcmp(A, "--gen")) {
      GenBucket = std::atoi(NextArg(I));
    } else if (!std::strcmp(A, "--inject-fused-sweep-bug")) {
      detail::InjectFusedSweepBug.store(true);
    } else if (!std::strcmp(A, "--verbose")) {
      Opts.Verbose = true;
    } else if (!std::strcmp(A, "--help") || !std::strcmp(A, "-h")) {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "gnt-fuzz: unknown option %s\n", A);
      usage();
      return 2;
    }
  }

  if (NetMode) {
    NetOracleOptions NO;
    NO.Seed = Opts.Seed;
    NO.CorpusDir = Opts.CorpusDir;
    if (Opts.MaxInputs && Opts.MaxInputs < 500)
      NO.MaxPrograms = static_cast<unsigned>(Opts.MaxInputs);
    NO.Verbose = Opts.Verbose;
    NetOracleReport Report = runNetOracle(NO);
    std::printf("gnt-fuzz(net): %llu programs, %llu responses diffed "
                "against the serial engine, %zu findings\n",
                Report.Programs, Report.Requests, Report.Findings.size());
    for (const NetOracleFinding &F : Report.Findings) {
      std::printf("  FINDING %s: %s\n", F.Kind.c_str(), F.Detail.c_str());
      if (!F.Request.empty())
        std::printf("    request: %.200s\n", F.Request.c_str());
    }
    return Report.clean() ? 0 : 1;
  }

  if (SpecMode) {
    SpecFuzzOptions SO;
    SO.Seed = Opts.Seed;
    SO.MaxSpecs = Opts.MaxInputs;
    SO.Verbose = Opts.Verbose;
    SpecFuzzReport Report = runSpecFuzzer(SO);
    std::printf("gnt-fuzz(specs): %llu specs (%llu accepted, %llu rejected), "
                "%zu findings\n",
                Report.Tried, Report.Accepted, Report.Rejected,
                Report.Findings.size());
    for (const SpecFuzzFinding &F : Report.Findings)
      std::printf("  FINDING %s: %s\n    spec:\n%s", F.Kind.c_str(),
                  F.Detail.c_str(), F.Spec.c_str());
    return Report.clean() ? 0 : 1;
  }

  if (GenBucket >= 0) {
    if (static_cast<unsigned>(GenBucket) >= NumGenBuckets) {
      std::fprintf(stderr, "gnt-fuzz: --gen bucket must be 0..%u\n",
                   NumGenBuckets - 1);
      return 2;
    }
    GenConfig C =
        genConfigForBucket(static_cast<unsigned>(GenBucket), Opts.Seed);
    std::fputs(AstPrinter().print(generateRandomProgram(C)).c_str(),
               stdout);
    return 0;
  }

  if (!DistillFile.empty()) {
    std::string Source;
    if (!readFile(DistillFile, Source))
      return 2;
    OracleOutcome Base = runOracle(Source);
    if (!Base.clean() || !Base.WerrorClean) {
      std::fprintf(stderr,
                   "gnt-fuzz: --distill input is not oracle-clean%s\n",
                   Base.Valid ? "" : " (frontend rejects it)");
      return 2;
    }
    std::string Small = distillProgram(Source, Opts.MinimizeBudget);
    OracleOutcome O = runOracle(Small);
    std::fputs(provenanceHeader("distilled", Opts.Seed, O.Features).c_str(),
               stdout);
    std::fputs(Small.c_str(), stdout);
    return 0;
  }

  if (!MinimizeFile.empty()) {
    std::string Source;
    if (!readFile(MinimizeFile, Source))
      return 2;
    OracleOutcome Base = runOracle(Source);
    if (Base.Findings.empty()) {
      std::fprintf(stderr, "gnt-fuzz: --minimize input has no findings\n");
      return 2;
    }
    std::string Class = findingClass(Base.Findings.front().Kind);
    std::string Small = minimizeSource(
        Source,
        [&](const std::string &Candidate) {
          OracleOutcome O = runOracle(Candidate);
          for (const OracleFinding &F : O.Findings)
            if (findingClass(F.Kind) == Class)
              return true;
          return false;
        },
        Opts.MinimizeBudget);
    OracleOutcome O = runOracle(Small);
    std::fputs(provenanceHeader(Class, Opts.Seed, O.Features).c_str(),
               stdout);
    std::fputs(Small.c_str(), stdout);
    return 1;
  }

  FuzzReport Report = runFuzzer(Opts);
  std::printf("gnt-fuzz: %llu inputs (%llu valid, %llu novel, %llu seeds), "
              "%u live corpus, %zu findings\n",
              Report.Executed, Report.Valid, Report.Novel,
              Report.SeedInputs, Report.CorpusSize,
              Report.Findings.size());
  for (const FuzzFinding &F : Report.Findings) {
    std::printf("  FINDING %s: %s\n", F.Kind.c_str(), F.Detail.c_str());
    if (!F.Path.empty())
      std::printf("    repro: %s\n", F.Path.c_str());
    else
      std::printf("    repro (%u lines):\n%s",
                  static_cast<unsigned>(
                      std::count(F.Minimized.begin(), F.Minimized.end(),
                                 '\n')),
                  F.Minimized.c_str());
  }
  return Report.Findings.empty() ? 0 : 1;
}
