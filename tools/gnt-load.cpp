//===- tools/gnt-load.cpp - Trace-driven gntd load generator ----------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// gnt-load: drives a running gntd socket server with a synthetic but
// reproducible workload and reports the latency distribution at each
// offered load point.
//
//   - The trace mixes program sizes: seeded random FMini programs from
//     every generator bucket (gen/RandomProgram.h), so small straight-
//     line kernels and deep loop nests share the run.
//   - Program popularity is zipf-distributed: a few hot sources
//     dominate, exercising both cache layers the way a real compile
//     farm would.
//   - Arrivals are open-loop: every request has a precomputed send
//     deadline derived from the offered RPS (optionally in bursts) and
//     is sent at that deadline whether or not earlier responses came
//     back. Latency is measured from the *scheduled* send time, so
//     server queueing delay is charged to the server (no coordinated
//     omission).
//   - With --verify every non-shed response is diffed byte-for-byte
//     against the in-process pipeline result for the same source; any
//     divergence is a correctness failure, not a performance number.
//
// Each load point reports p50/p99/p999 service latency plus ok/shed/
// error counts; the whole sweep lands in BENCH_gntd_load.json (same
// gnt-bench-v1 trajectory schema as the microbenchmarks). Exit status
// is nonzero when any response was a non-shed error or a verify
// mismatch — sheds under saturation are expected load discipline, not
// failures.
//
//===----------------------------------------------------------------------===//

#include "gen/RandomProgram.h"
#include "ir/AstPrinter.h"
#include "service/BatchServer.h"
#include "support/Json.h"
#include "support/Support.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

using namespace gnt;
using Clock = std::chrono::steady_clock;

namespace {

struct Options {
  std::string Host = "127.0.0.1";
  unsigned Port = 7411;
  unsigned Connections = 8;
  std::vector<double> RpsPoints; // Default filled in main.
  double DurationS = 5.0;
  unsigned Burst = 1;
  unsigned Programs = 64;
  double ZipfS = 1.1;
  unsigned Seed = 1;
  unsigned Tenants = 1;
  bool Verify = false;
  std::string Out = "BENCH_gntd_load.json";
};

void usage(std::FILE *To) {
  std::fprintf(
      To,
      "usage: gnt-load [options]\n"
      "\n"
      "Open-loop load generator for a running `gntd` socket server.\n"
      "\n"
      "  --host A          server address (default 127.0.0.1)\n"
      "  --port N          server port (default 7411)\n"
      "  --connections N   concurrent connections (default 8)\n"
      "  --rps R           offered load point in requests/second; repeat\n"
      "                    the flag or comma-separate for a sweep\n"
      "                    (default 100,400,1600)\n"
      "  --duration-s S    seconds per load point (default 5)\n"
      "  --burst N         arrivals grouped into bursts of N sent\n"
      "                    back-to-back (default 1: paced evenly)\n"
      "  --programs N      distinct source programs in the trace\n"
      "                    (default 64)\n"
      "  --zipf S          popularity skew; higher = hotter head\n"
      "                    (default 1.1)\n"
      "  --tenants N       spread requests over N tenant names\n"
      "                    (default 1)\n"
      "  --seed N          trace seed (default 1)\n"
      "  --verify          diff every non-shed response against the\n"
      "                    in-process pipeline (byte-exact)\n"
      "  --out F           trajectory file (default BENCH_gntd_load.json)\n"
      "  --help            print this help\n"
      "\n"
      "Exit status 1 on any non-shed error response or verify mismatch;\n"
      "structured `overloaded` sheds are expected under saturation and\n"
      "reported, not failed.\n");
}

bool parseUnsigned(const char *Arg, const char *Flag, unsigned &Out,
                   unsigned Max = 1'000'000) {
  char *End = nullptr;
  long long V = std::strtoll(Arg, &End, 10);
  if (End == Arg || *End != '\0' || V < 0 || V > Max) {
    std::fprintf(stderr, "gnt-load: %s needs an integer in [0, %u]\n", Flag,
                 Max);
    return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

bool parseDouble(const char *Arg, const char *Flag, double &Out) {
  char *End = nullptr;
  double V = std::strtod(Arg, &End);
  if (End == Arg || *End != '\0' || V <= 0 || V > 1e9) {
    std::fprintf(stderr, "gnt-load: %s needs a positive number\n", Flag);
    return false;
  }
  Out = V;
  return true;
}

bool parseArgs(int Argc, char **Argv, Options &O, int &Exit) {
  Exit = 2;
  auto Value = [&](int &I, const char *Flag) -> const char * {
    if (++I == Argc) {
      std::fprintf(stderr, "gnt-load: %s needs a value\n", Flag);
      return nullptr;
    }
    return Argv[I];
  };
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    const char *V = nullptr;
    if (A == "--host") {
      if (!(V = Value(I, "--host")))
        return false;
      O.Host = V;
    } else if (A == "--port") {
      if (!(V = Value(I, "--port")) ||
          !parseUnsigned(V, "--port", O.Port, 65535))
        return false;
    } else if (A == "--connections") {
      if (!(V = Value(I, "--connections")) ||
          !parseUnsigned(V, "--connections", O.Connections, 4096))
        return false;
      if (O.Connections == 0)
        O.Connections = 1;
    } else if (A == "--rps") {
      if (!(V = Value(I, "--rps")))
        return false;
      // Accept "100,400,1600" as well as one value per flag.
      std::string S = V;
      std::size_t Pos = 0;
      while (Pos <= S.size()) {
        std::size_t Comma = S.find(',', Pos);
        std::string Tok = S.substr(
            Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
        double R;
        if (!parseDouble(Tok.c_str(), "--rps", R))
          return false;
        O.RpsPoints.push_back(R);
        if (Comma == std::string::npos)
          break;
        Pos = Comma + 1;
      }
    } else if (A == "--duration-s") {
      if (!(V = Value(I, "--duration-s")) ||
          !parseDouble(V, "--duration-s", O.DurationS))
        return false;
    } else if (A == "--burst") {
      if (!(V = Value(I, "--burst")) ||
          !parseUnsigned(V, "--burst", O.Burst, 10000))
        return false;
      if (O.Burst == 0)
        O.Burst = 1;
    } else if (A == "--programs") {
      if (!(V = Value(I, "--programs")) ||
          !parseUnsigned(V, "--programs", O.Programs, 100000))
        return false;
      if (O.Programs == 0)
        O.Programs = 1;
    } else if (A == "--zipf") {
      if (!(V = Value(I, "--zipf")) || !parseDouble(V, "--zipf", O.ZipfS))
        return false;
    } else if (A == "--tenants") {
      if (!(V = Value(I, "--tenants")) ||
          !parseUnsigned(V, "--tenants", O.Tenants, 10000))
        return false;
      if (O.Tenants == 0)
        O.Tenants = 1;
    } else if (A == "--seed") {
      if (!(V = Value(I, "--seed")) ||
          !parseUnsigned(V, "--seed", O.Seed, 1u << 30))
        return false;
    } else if (A == "--verify") {
      O.Verify = true;
    } else if (A == "--out") {
      if (!(V = Value(I, "--out")))
        return false;
      O.Out = V;
    } else if (A == "--help") {
      usage(stdout);
      Exit = 0;
      return false;
    } else {
      std::fprintf(stderr, "gnt-load: unknown option %s\n", A.c_str());
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Trace construction
//===----------------------------------------------------------------------===//

/// Uniform double in [0, 1) from raw mt19937_64 draws (the raw stream
/// is fully specified by the standard; distribution adaptors are not).
double uniform01(std::mt19937_64 &Rng) {
  return static_cast<double>(Rng() >> 11) * (1.0 / 9007199254740992.0);
}

/// Zipf CDF over \p N ranks with skew \p S.
std::vector<double> zipfCdf(unsigned N, double S) {
  std::vector<double> Cdf(N);
  double Sum = 0;
  for (unsigned R = 0; R < N; ++R) {
    Sum += 1.0 / std::pow(static_cast<double>(R + 1), S);
    Cdf[R] = Sum;
  }
  for (double &V : Cdf)
    V /= Sum;
  return Cdf;
}

unsigned sampleCdf(const std::vector<double> &Cdf, std::mt19937_64 &Rng) {
  double U = uniform01(Rng);
  return static_cast<unsigned>(
      std::lower_bound(Cdf.begin(), Cdf.end(), U) - Cdf.begin());
}

struct SendItem {
  Clock::duration Offset; ///< Scheduled send time relative to point start.
  std::string Line;       ///< Full request frame, newline included.
  unsigned Prog;          ///< Source program index (for verify).
};

/// One connection's slice of a load point, in send order.
struct ConnTrace {
  std::vector<SendItem> Items;
};

std::string buildRequestLine(const std::string &Id, const std::string &Source,
                             const std::string &Tenant) {
  JsonWriter W;
  W.beginObject();
  W.key("id").value(Id);
  if (!Tenant.empty())
    W.key("tenant").value(Tenant);
  W.key("source").value(Source);
  W.endObject();
  return W.str() + "\n";
}

//===----------------------------------------------------------------------===//
// Socket client
//===----------------------------------------------------------------------===//

int dialServer(const std::string &Host, unsigned Port, std::string &Error) {
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<std::uint16_t>(Port));
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    Error = "cannot parse host `" + Host + "`";
    ::close(Fd);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = "connect " + Host + ":" + itostr(static_cast<long long>(Port)) +
            ": " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  timeval Tv{30, 0}; // A stuck server fails the run, never hangs it.
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  return Fd;
}

bool sendAll(int Fd, const char *Data, std::size_t Len) {
  while (Len) {
    ssize_t W = ::write(Fd, Data, Len);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += W;
    Len -= static_cast<std::size_t>(W);
  }
  return true;
}

/// Tallies for one connection at one load point.
struct ConnResult {
  std::vector<double> LatencyUs; ///< Non-shed OK responses only.
  unsigned long long Ok = 0;
  unsigned long long Shed = 0;
  unsigned long long Errors = 0;     ///< Non-shed failures.
  unsigned long long Mismatches = 0; ///< --verify byte diffs.
};

void runConnection(int Fd, const ConnTrace &Trace, Clock::time_point Start,
                   const std::vector<std::string> *Expected,
                   const std::vector<std::string> &Ids, ConnResult &Result) {
  // Sender: fire each request at its open-loop deadline.
  std::atomic<bool> SendFailed{false};
  std::thread Sender([&] {
    for (const SendItem &Item : Trace.Items) {
      std::this_thread::sleep_until(Start + Item.Offset);
      if (!sendAll(Fd, Item.Line.data(), Item.Line.size())) {
        SendFailed.store(true);
        return;
      }
    }
    ::shutdown(Fd, SHUT_WR); // Tell the server this batch is complete.
  });

  // Receiver: responses come back in send order (the server's
  // per-connection ordering guarantee), so pair them positionally.
  std::string Buf;
  std::size_t Next = 0;
  char Chunk[64 * 1024];
  while (Next < Trace.Items.size()) {
    std::size_t Nl = Buf.find('\n');
    if (Nl == std::string::npos) {
      ssize_t R = ::read(Fd, Chunk, sizeof(Chunk));
      if (R <= 0) {
        if (R < 0 && errno == EINTR)
          continue;
        break; // EOF or timeout: remaining requests count as errors.
      }
      Buf.append(Chunk, static_cast<std::size_t>(R));
      continue;
    }
    std::string Line = Buf.substr(0, Nl);
    Buf.erase(0, Nl + 1);
    const SendItem &Sent = Trace.Items[Next];
    double Us = std::chrono::duration<double, std::micro>(
                    Clock::now() - (Start + Sent.Offset))
                    .count();
    ++Next;
    if (Line.find("\"error\":\"overloaded\"") != std::string::npos) {
      ++Result.Shed;
      continue;
    }
    bool Failed =
        Line.find("\"error\":") != std::string::npos &&
        Line.find("\"ok\":false") != std::string::npos;
    if (Failed) {
      ++Result.Errors;
      continue;
    }
    if (Expected &&
        Line != renderResponse(Ids[Sent.Prog], (*Expected)[Sent.Prog])) {
      ++Result.Mismatches;
      continue;
    }
    ++Result.Ok;
    Result.LatencyUs.push_back(Us);
  }
  Sender.join();
  Result.Errors += Trace.Items.size() - Next; // Unanswered requests.
  if (SendFailed.load())
    ++Result.Errors;
}

double percentile(std::vector<double> &V, double P) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  double Rank = P / 100.0 * static_cast<double>(V.size());
  std::size_t Idx = static_cast<std::size_t>(Rank);
  if (Idx >= V.size())
    Idx = V.size() - 1;
  return V[Idx];
}

} // namespace

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

int main(int Argc, char **Argv) {
  Options O;
  int Exit = 2;
  if (!parseArgs(Argc, Argv, O, Exit)) {
    if (Exit != 0)
      usage(stderr);
    return Exit;
  }
  if (O.RpsPoints.empty())
    O.RpsPoints = {100, 400, 1600};

  // Build the program set: every generator bucket, mixed target sizes.
  std::fprintf(stderr, "gnt-load: generating %u programs...\n", O.Programs);
  std::vector<std::string> Sources(O.Programs);
  std::vector<std::string> Ids(O.Programs);
  for (unsigned I = 0; I < O.Programs; ++I) {
    GenConfig GC = genConfigForBucket(I % NumGenBuckets, O.Seed + I);
    // Mix program sizes beyond the bucket presets: every third program
    // triples its statement budget, every fifth halves it.
    if (I % 3 == 2)
      GC.TargetStmts *= 3;
    else if (I % 5 == 4)
      GC.TargetStmts = GC.TargetStmts / 2 + 1;
    Sources[I] = AstPrinter().print(generateRandomProgram(GC));
    Ids[I] = "p" + itostr(static_cast<long long>(I));
  }

  // Expected payloads for --verify: the deterministic in-process result.
  std::vector<std::string> Expected;
  if (O.Verify) {
    std::fprintf(stderr, "gnt-load: precomputing %u reference results...\n",
                 O.Programs);
    Expected.resize(O.Programs);
    for (unsigned I = 0; I < O.Programs; ++I)
      Expected[I] = renderResultPayload(compilePipeline(Sources[I]));
  }

  std::vector<double> Cdf = zipfCdf(O.Programs, O.ZipfS);

  struct PointRow {
    double Rps = 0;
    unsigned long long Requests = 0, Ok = 0, Shed = 0, Errors = 0,
                       Mismatches = 0;
    double AchievedRps = 0, P50 = 0, P99 = 0, P999 = 0;
  };
  std::vector<PointRow> Rows;
  bool AnyFailure = false;

  for (double Rps : O.RpsPoints) {
    unsigned long long Total = static_cast<unsigned long long>(
        Rps * O.DurationS + 0.5);
    if (Total == 0)
      Total = 1;
    std::mt19937_64 Rng(O.Seed * 1000003ull +
                        static_cast<unsigned long long>(Rps));

    // Open-loop schedule: burst j of size B departs at t = j*B/rps.
    std::vector<ConnTrace> Traces(O.Connections);
    for (unsigned long long K = 0; K < Total; ++K) {
      double At = static_cast<double>((K / O.Burst) * O.Burst) / Rps;
      unsigned Prog = sampleCdf(Cdf, Rng);
      std::string Tenant =
          O.Tenants > 1
              ? "t" + itostr(static_cast<long long>(K % O.Tenants))
              : std::string();
      SendItem Item;
      Item.Offset = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(At));
      Item.Line = buildRequestLine(Ids[Prog], Sources[Prog], Tenant);
      Item.Prog = Prog;
      Traces[K % O.Connections].Items.push_back(std::move(Item));
    }

    // Dial all connections before starting the clock.
    std::vector<int> Fds(O.Connections, -1);
    for (unsigned C = 0; C < O.Connections; ++C) {
      std::string Error;
      Fds[C] = dialServer(O.Host, O.Port, Error);
      if (Fds[C] < 0) {
        std::fprintf(stderr, "gnt-load: %s\n", Error.c_str());
        for (int Fd : Fds)
          if (Fd >= 0)
            ::close(Fd);
        return 1;
      }
    }

    std::fprintf(stderr,
                 "gnt-load: point %.0f rps, %llu requests over %u "
                 "connections...\n",
                 Rps, Total, O.Connections);
    std::vector<ConnResult> Results(O.Connections);
    Clock::time_point Start = Clock::now();
    std::vector<std::thread> Threads;
    for (unsigned C = 0; C < O.Connections; ++C)
      Threads.emplace_back([&, C] {
        runConnection(Fds[C], Traces[C], Start,
                      O.Verify ? &Expected : nullptr, Ids, Results[C]);
      });
    for (std::thread &T : Threads)
      T.join();
    double ElapsedS =
        std::chrono::duration<double>(Clock::now() - Start).count();
    for (int Fd : Fds)
      ::close(Fd);

    PointRow Row;
    Row.Rps = Rps;
    Row.Requests = Total;
    std::vector<double> All;
    for (ConnResult &R : Results) {
      Row.Ok += R.Ok;
      Row.Shed += R.Shed;
      Row.Errors += R.Errors;
      Row.Mismatches += R.Mismatches;
      All.insert(All.end(), R.LatencyUs.begin(), R.LatencyUs.end());
    }
    Row.AchievedRps =
        ElapsedS > 0 ? static_cast<double>(Row.Ok + Row.Shed) / ElapsedS : 0;
    Row.P50 = percentile(All, 50);
    Row.P99 = percentile(All, 99);
    Row.P999 = percentile(All, 99.9);
    std::fprintf(stderr,
                 "  ok %llu, shed %llu, errors %llu, mismatches %llu | "
                 "p50 %.0fus p99 %.0fus p999 %.0fus\n",
                 Row.Ok, Row.Shed, Row.Errors, Row.Mismatches, Row.P50,
                 Row.P99, Row.P999);
    if (Row.Errors || Row.Mismatches)
      AnyFailure = true;
    Rows.push_back(Row);
  }

  // Trajectory file, one benchmark row per load point.
  JsonWriter W;
  auto Num = [&](double V) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.3f", V);
    W.raw(Buf);
  };
  W.beginObject();
  W.key("schema").value("gnt-bench-v1");
  W.beginArray("benchmarks");
  for (const PointRow &R : Rows) {
    W.beginObject();
    W.key("name").value("LOAD_gntd/" +
                        itostr(static_cast<long long>(R.Rps)));
    W.key("config");
    W.beginObject();
    W.key("rps");
    Num(R.Rps);
    W.key("connections");
    Num(O.Connections);
    W.key("requests");
    Num(static_cast<double>(R.Requests));
    W.key("ok");
    Num(static_cast<double>(R.Ok));
    W.key("shed");
    Num(static_cast<double>(R.Shed));
    W.key("errors");
    Num(static_cast<double>(R.Errors));
    W.key("mismatches");
    Num(static_cast<double>(R.Mismatches));
    W.key("achieved_rps");
    Num(R.AchievedRps);
    W.key("p50_us");
    Num(R.P50);
    W.key("p999_us");
    Num(R.P999);
    W.endObject();
    W.key("metric");
    Num(R.P99);
    W.key("unit").value("us");
    W.endObject();
  }
  W.endArray();
  W.endObject();
  if (std::FILE *F = std::fopen(O.Out.c_str(), "w")) {
    std::fputs(W.str().c_str(), F);
    std::fputc('\n', F);
    std::fclose(F);
    std::fprintf(stderr, "gnt-load: trajectory written to %s\n",
                 O.Out.c_str());
  } else {
    std::fprintf(stderr, "gnt-load: cannot write %s\n", O.Out.c_str());
    return 1;
  }
  return AnyFailure ? 1 : 0;
}
