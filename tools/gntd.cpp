//===- tools/gntd.cpp - GIVE-N-TAKE batch compilation server ----------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// gntd: compile a batch of FMini programs through the placement
// pipeline. Requests are JSON-lines (one object per line, see
// service/BatchServer.h for the schema) read from a file or stdin;
// responses are JSON-lines on stdout, one per request, in request
// order. Jobs are scheduled on a worker thread pool and repeat
// requests are served from a content-hash result cache. Failures are
// isolated per job: a program that does not parse or fails its audit
// produces a diagnostic payload, never a dead batch.
//
//   gntd [options] [requests.jsonl]     (default/`-`: stdin)
//
// On shutdown the service metrics (jobs, throughput, cache hit rate,
// per-stage latency min/mean/p50/p99) are printed as text on stderr
// and, with --metrics-json, as JSON to a file (`-` for stdout, after
// the responses).
//
//===----------------------------------------------------------------------===//

#include "service/BatchServer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

using namespace gnt;

namespace {

struct Options {
  std::string File = "-";
  unsigned Workers = 0; // 0: pick hardware concurrency.
  bool WorkersSet = false;
  unsigned CacheSize = 1024;
  std::string MetricsJson;
  bool Quiet = false;
};

void usage(std::FILE *To) {
  std::fprintf(
      To,
      "usage: gntd [options] [REQUESTS.jsonl]   (default `-` for stdin)\n"
      "\n"
      "Batch compilation server: one JSON request per input line, one\n"
      "JSON response per line on stdout, in request order.\n"
      "\n"
      "  --workers N       worker threads (default: hardware concurrency;\n"
      "                    0 compiles serially in the main thread)\n"
      "  --cache-size N    result cache capacity in entries (default 1024;\n"
      "                    0 disables caching)\n"
      "  --metrics-json F  write service metrics as JSON to file F\n"
      "                    (`-` appends them to stdout after the responses)\n"
      "  --quiet           suppress the text metrics summary on stderr\n"
      "  --help            print this help\n");
}

bool parseUnsigned(const char *Arg, const char *Flag, unsigned &Out) {
  char *End = nullptr;
  long long V = std::strtoll(Arg, &End, 10);
  if (End == Arg || *End != '\0' || V < 0 || V > 1'000'000) {
    std::fprintf(stderr, "gntd: %s needs a non-negative integer, got %s\n",
                 Flag, Arg);
    return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

bool parseArgs(int Argc, char **Argv, Options &O, int &Exit) {
  Exit = 2;
  bool SawFile = false;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--workers") {
      if (++I == Argc) {
        std::fprintf(stderr, "gntd: --workers needs a value\n");
        return false;
      }
      if (!parseUnsigned(Argv[I], "--workers", O.Workers))
        return false;
      O.WorkersSet = true;
    } else if (A == "--cache-size") {
      if (++I == Argc) {
        std::fprintf(stderr, "gntd: --cache-size needs a value\n");
        return false;
      }
      if (!parseUnsigned(Argv[I], "--cache-size", O.CacheSize))
        return false;
    } else if (A == "--metrics-json") {
      if (++I == Argc) {
        std::fprintf(stderr, "gntd: --metrics-json needs a value\n");
        return false;
      }
      O.MetricsJson = Argv[I];
    } else if (A == "--quiet") {
      O.Quiet = true;
    } else if (A == "--help") {
      usage(stdout);
      Exit = 0;
      return false;
    } else if (!A.empty() && A[0] == '-' && A != "-") {
      std::fprintf(stderr, "gntd: unknown option %s\n", A.c_str());
      return false;
    } else {
      if (SawFile) {
        std::fprintf(stderr, "gntd: more than one input file\n");
        return false;
      }
      O.File = A;
      SawFile = true;
    }
  }
  return true;
}

bool readLines(const std::string &File, std::vector<std::string> &Lines) {
  if (File == "-") {
    std::string Line;
    while (std::getline(std::cin, Line))
      Lines.push_back(Line);
    return true;
  }
  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "gntd: cannot open %s\n", File.c_str());
    return false;
  }
  std::string Line;
  while (std::getline(In, Line))
    Lines.push_back(Line);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  int Exit = 2;
  if (!parseArgs(Argc, Argv, O, Exit)) {
    if (Exit != 0)
      usage(stderr);
    return Exit;
  }
  if (!O.WorkersSet) {
    unsigned HW = std::thread::hardware_concurrency();
    O.Workers = HW ? HW : 1;
  }

  std::vector<std::string> Lines;
  if (!readLines(O.File, Lines))
    return 1;

  ServiceConfig Config;
  Config.Workers = O.Workers;
  Config.CacheCapacity = O.CacheSize;
  BatchServer Server(Config);

  std::vector<std::string> Responses = Server.run(Lines);
  for (const std::string &R : Responses) {
    std::fputs(R.c_str(), stdout);
    std::fputc('\n', stdout);
  }

  const ServiceMetrics &M = Server.metrics();
  if (!O.Quiet)
    std::fputs(M.renderText().c_str(), stderr);
  if (!O.MetricsJson.empty()) {
    if (O.MetricsJson == "-") {
      std::fputs(M.renderJson().c_str(), stdout);
      std::fputc('\n', stdout);
    } else {
      std::ofstream Out(O.MetricsJson);
      if (!Out) {
        std::fprintf(stderr, "gntd: cannot write %s\n", O.MetricsJson.c_str());
        return 1;
      }
      Out << M.renderJson() << "\n";
    }
  }
  return 0;
}
