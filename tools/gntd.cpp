//===- tools/gntd.cpp - GIVE-N-TAKE compilation service ---------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// gntd: compile FMini programs through the placement pipeline as a
// service. Two modes share one request schema (JSON object per line,
// see service/BatchServer.h):
//
//   gntd [--port N]            socket mode (default): an epoll server
//                              speaks newline-framed JSON on the port,
//                              serves Prometheus text on GET /metrics,
//                              sheds load with structured `overloaded`
//                              errors, and drains gracefully on
//                              SIGTERM/SIGINT.
//   gntd --stdio [FILE]        batch mode: requests from FILE or stdin,
//                              responses on stdout in request order —
//                              byte-compatible with the historical
//                              stdin/stdout contract.
//
// Both modes schedule jobs on a worker pool, serve repeats from a
// content-hash LRU, and (with --disk-cache) layer a persistent
// content-addressed result cache underneath that survives restarts.
// On shutdown the service metrics are printed as text on stderr and,
// with --metrics-json, as JSON to a file.
//
//===----------------------------------------------------------------------===//

#include "net/NetServer.h"
#include "service/BatchServer.h"

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

using namespace gnt;
using namespace gnt::net;

namespace {

struct Options {
  bool Stdio = false;
  std::string File = "-";
  unsigned Workers = 0; // 0: pick hardware concurrency.
  bool WorkersSet = false;
  unsigned CacheSize = 1024;
  std::string MetricsJson;
  bool Quiet = false;

  // Socket mode.
  std::string Host = "127.0.0.1";
  unsigned Port = 7411;
  unsigned MaxPending = 256;
  unsigned MaxFrameBytes = 1u << 20;
  double QuotaRps = 0;
  double QuotaBurst = 32;
  unsigned DrainTimeoutMs = 10000;

  // Persistent cache (both modes).
  std::string DiskCache;
  unsigned DiskCacheEntries = 4096;
  std::uint64_t DiskCacheMemoBytes = 64ull << 20;
};

void usage(std::FILE *To) {
  std::fprintf(
      To,
      "usage: gntd [options]                    socket service (default)\n"
      "       gntd --stdio [REQUESTS.jsonl]     batch mode (`-`: stdin)\n"
      "\n"
      "Compilation service: one JSON request per line, one JSON response\n"
      "per line, per-connection (socket) or global (batch) request order.\n"
      "\n"
      "Common:\n"
      "  --workers N          worker threads (default: hardware\n"
      "                       concurrency; 0 compiles serially)\n"
      "  --cache-size N       in-memory result cache entries (default\n"
      "                       1024; 0 disables caching)\n"
      "  --disk-cache DIR     persistent result cache directory; entries\n"
      "                       survive restarts (default: off)\n"
      "  --disk-cache-entries N  persistent cache capacity (default 4096)\n"
      "  --disk-cache-memo-bytes N  byte budget for persisted solve\n"
      "                       memos, evicted oldest-first (default\n"
      "                       67108864; 0 = uncapped)\n"
      "  --metrics-json F     write service metrics as JSON to file F\n"
      "                       (`-` appends to stdout after the responses)\n"
      "  --quiet              suppress the text metrics summary on stderr\n"
      "  --help               print this help\n"
      "\n"
      "Socket mode:\n"
      "  --host A             bind address (default 127.0.0.1)\n"
      "  --port N             TCP port (default 7411; 0 picks one and\n"
      "                       prints it)\n"
      "  --max-pending N      admission queue bound; excess requests are\n"
      "                       shed with a structured `overloaded` error\n"
      "                       (default 256)\n"
      "  --max-frame-bytes N  largest acceptable request frame (default\n"
      "                       1048576)\n"
      "  --quota-rps R        per-tenant admission rate limit in\n"
      "                       requests/second (default 0: off)\n"
      "  --quota-burst B      per-tenant burst allowance (default 32)\n"
      "  --drain-timeout-ms N hard cap on graceful drain (default 10000)\n"
      "\n"
      "GET /metrics on the same port serves Prometheus text exposition.\n"
      "SIGTERM/SIGINT drain gracefully: in-flight and queued jobs finish,\n"
      "buffers flush, the persistent cache index is written, metrics\n"
      "print on stderr.\n");
}

bool parseUnsigned(const char *Arg, const char *Flag, unsigned &Out,
                   unsigned Max = 1'000'000) {
  char *End = nullptr;
  long long V = std::strtoll(Arg, &End, 10);
  if (End == Arg || *End != '\0' || V < 0 || V > Max) {
    std::fprintf(stderr, "gntd: %s needs an integer in [0, %u], got %s\n",
                 Flag, Max, Arg);
    return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

/// 64-bit variant for byte budgets, which can legitimately exceed the
/// 32-bit flag ceiling.
bool parseUnsigned64(const char *Arg, const char *Flag, std::uint64_t &Out,
                     std::uint64_t Max = std::uint64_t{1} << 40) {
  char *End = nullptr;
  long long V = std::strtoll(Arg, &End, 10);
  if (End == Arg || *End != '\0' || V < 0 ||
      static_cast<std::uint64_t>(V) > Max) {
    std::fprintf(stderr, "gntd: %s needs an integer in [0, %llu], got %s\n",
                 Flag, static_cast<unsigned long long>(Max), Arg);
    return false;
  }
  Out = static_cast<std::uint64_t>(V);
  return true;
}

bool parseDouble(const char *Arg, const char *Flag, double &Out) {
  char *End = nullptr;
  double V = std::strtod(Arg, &End);
  if (End == Arg || *End != '\0' || V < 0 || V > 1e9) {
    std::fprintf(stderr, "gntd: %s needs a non-negative number, got %s\n",
                 Flag, Arg);
    return false;
  }
  Out = V;
  return true;
}

bool parseArgs(int Argc, char **Argv, Options &O, int &Exit) {
  Exit = 2;
  bool SawFile = false;
  auto Value = [&](int &I, const char *Flag) -> const char * {
    if (++I == Argc) {
      std::fprintf(stderr, "gntd: %s needs a value\n", Flag);
      return nullptr;
    }
    return Argv[I];
  };
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    const char *V = nullptr;
    if (A == "--stdio") {
      O.Stdio = true;
    } else if (A == "--workers") {
      if (!(V = Value(I, "--workers")) ||
          !parseUnsigned(V, "--workers", O.Workers))
        return false;
      O.WorkersSet = true;
    } else if (A == "--cache-size") {
      if (!(V = Value(I, "--cache-size")) ||
          !parseUnsigned(V, "--cache-size", O.CacheSize))
        return false;
    } else if (A == "--disk-cache") {
      if (!(V = Value(I, "--disk-cache")))
        return false;
      O.DiskCache = V;
    } else if (A == "--disk-cache-entries") {
      if (!(V = Value(I, "--disk-cache-entries")) ||
          !parseUnsigned(V, "--disk-cache-entries", O.DiskCacheEntries))
        return false;
    } else if (A == "--disk-cache-memo-bytes") {
      if (!(V = Value(I, "--disk-cache-memo-bytes")) ||
          !parseUnsigned64(V, "--disk-cache-memo-bytes",
                           O.DiskCacheMemoBytes))
        return false;
    } else if (A == "--metrics-json") {
      if (!(V = Value(I, "--metrics-json")))
        return false;
      O.MetricsJson = V;
    } else if (A == "--host") {
      if (!(V = Value(I, "--host")))
        return false;
      O.Host = V;
    } else if (A == "--port") {
      if (!(V = Value(I, "--port")) ||
          !parseUnsigned(V, "--port", O.Port, 65535))
        return false;
    } else if (A == "--max-pending") {
      if (!(V = Value(I, "--max-pending")) ||
          !parseUnsigned(V, "--max-pending", O.MaxPending))
        return false;
    } else if (A == "--max-frame-bytes") {
      if (!(V = Value(I, "--max-frame-bytes")) ||
          !parseUnsigned(V, "--max-frame-bytes", O.MaxFrameBytes,
                         1u << 30))
        return false;
    } else if (A == "--quota-rps") {
      if (!(V = Value(I, "--quota-rps")) ||
          !parseDouble(V, "--quota-rps", O.QuotaRps))
        return false;
    } else if (A == "--quota-burst") {
      if (!(V = Value(I, "--quota-burst")) ||
          !parseDouble(V, "--quota-burst", O.QuotaBurst))
        return false;
    } else if (A == "--drain-timeout-ms") {
      if (!(V = Value(I, "--drain-timeout-ms")) ||
          !parseUnsigned(V, "--drain-timeout-ms", O.DrainTimeoutMs,
                         3'600'000))
        return false;
    } else if (A == "--quiet") {
      O.Quiet = true;
    } else if (A == "--help") {
      usage(stdout);
      Exit = 0;
      return false;
    } else if (!A.empty() && A[0] == '-' && A != "-") {
      std::fprintf(stderr, "gntd: unknown option %s\n", A.c_str());
      return false;
    } else {
      if (SawFile) {
        std::fprintf(stderr, "gntd: more than one input file\n");
        return false;
      }
      // A positional file implies batch mode: the historical CLI
      // (`gntd requests.jsonl`) keeps working unchanged.
      O.File = A;
      O.Stdio = true;
      SawFile = true;
    }
  }
  return true;
}

bool readLines(const std::string &File, std::vector<std::string> &Lines) {
  if (File == "-") {
    std::string Line;
    while (std::getline(std::cin, Line))
      Lines.push_back(Line);
    return true;
  }
  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "gntd: cannot open %s\n", File.c_str());
    return false;
  }
  std::string Line;
  while (std::getline(In, Line))
    Lines.push_back(Line);
  return true;
}

bool writeMetrics(const ServiceMetrics &M, const Options &O) {
  if (!O.Quiet)
    std::fputs(M.renderText().c_str(), stderr);
  if (O.MetricsJson.empty())
    return true;
  if (O.MetricsJson == "-") {
    std::fputs(M.renderJson().c_str(), stdout);
    std::fputc('\n', stdout);
    return true;
  }
  std::ofstream Out(O.MetricsJson);
  if (!Out) {
    std::fprintf(stderr, "gntd: cannot write %s\n", O.MetricsJson.c_str());
    return false;
  }
  Out << M.renderJson() << "\n";
  return true;
}

// Signal plumbing. Both targets are lock-free atomics / eventfd writes,
// so the handlers are async-signal-safe.
std::atomic<bool> StopFlag{false};
NetServer *SignalServer = nullptr;

void onSignalBatch(int) { StopFlag.store(true, std::memory_order_release); }

void onSignalNet(int) {
  StopFlag.store(true, std::memory_order_release);
  if (SignalServer)
    SignalServer->requestDrain();
}

void installHandlers(void (*Handler)(int)) {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = Handler;
  sigemptyset(&SA.sa_mask);
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);
}

int runBatch(const Options &O, ServiceConfig Config) {
  std::vector<std::string> Lines;
  if (!readLines(O.File, Lines))
    return 1;

  // SIGTERM/SIGINT drain the batch instead of killing it: jobs not yet
  // started answer `cancelled`, finished work is flushed, the disk
  // cache index is written, and the metrics block still prints.
  Config.Stop = &StopFlag;
  installHandlers(onSignalBatch);

  BatchServer Server(Config);
  if (!Server.diskCacheError().empty())
    std::fprintf(stderr, "gntd: disk cache disabled: %s\n",
                 Server.diskCacheError().c_str());

  std::vector<std::string> Responses = Server.run(Lines);
  for (const std::string &R : Responses) {
    std::fputs(R.c_str(), stdout);
    std::fputc('\n', stdout);
  }
  Server.flushDiskCache();

  // Snapshot, not the raw reference: the snapshot merges the stage
  // cache's per-stage hit/miss counters and incremental solver totals.
  if (!writeMetrics(Server.metricsSnapshot(), O))
    return 1;
  return 0;
}

int runSocket(const Options &O, ServiceConfig Config) {
  NetConfig NC;
  NC.Host = O.Host;
  NC.Port = static_cast<std::uint16_t>(O.Port);
  NC.MaxPending = O.MaxPending;
  NC.MaxFrameBytes = O.MaxFrameBytes;
  NC.QuotaRps = O.QuotaRps;
  NC.QuotaBurst = O.QuotaBurst;
  NC.DrainTimeoutMs = O.DrainTimeoutMs;

  NetServer Server(std::move(Config), NC);
  std::string Error;
  if (!Server.start(Error)) {
    std::fprintf(stderr, "gntd: %s\n", Error.c_str());
    return 1;
  }
  if (!Server.service().diskCacheError().empty())
    std::fprintf(stderr, "gntd: disk cache disabled: %s\n",
                 Server.service().diskCacheError().c_str());
  std::fprintf(stderr, "gntd: listening on %s:%u (GET /metrics for stats)\n",
               O.Host.c_str(), unsigned(Server.port()));

  SignalServer = &Server;
  installHandlers(onSignalNet);

  // The event loop owns the process from here; wait for a signal to
  // start the drain, then for the drain to finish.
  Server.join();
  SignalServer = nullptr;

  const NetMetrics &N = Server.metrics();
  if (!O.Quiet) {
    std::fprintf(stderr,
                 "connections: %llu accepted, %llu closed\n"
                 "frames: %llu in, %llu responses out\n"
                 "shed: %llu (queue_full %llu, quota %llu, draining %llu)\n"
                 "frame errors: %llu malformed, %llu oversized, %llu "
                 "truncated\n"
                 "queue peak: %llu\n",
                 (unsigned long long)N.ConnectionsAccepted.load(),
                 (unsigned long long)N.ConnectionsClosed.load(),
                 (unsigned long long)N.Frames.load(),
                 (unsigned long long)N.Responses.load(),
                 (unsigned long long)N.shedTotal(),
                 (unsigned long long)N.ShedQueueFull.load(),
                 (unsigned long long)N.ShedQuota.load(),
                 (unsigned long long)N.ShedDraining.load(),
                 (unsigned long long)N.Malformed.load(),
                 (unsigned long long)N.Oversized.load(),
                 (unsigned long long)N.Truncated.load(),
                 (unsigned long long)N.QueuePeak.load());
  }
  ServiceMetrics M = Server.service().metricsSnapshot();
  if (!writeMetrics(M, O))
    return 1;
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  int Exit = 2;
  if (!parseArgs(Argc, Argv, O, Exit)) {
    if (Exit != 0)
      usage(stderr);
    return Exit;
  }
  if (!O.WorkersSet) {
    unsigned HW = std::thread::hardware_concurrency();
    O.Workers = HW ? HW : 1;
  }

  ServiceConfig Config;
  Config.Workers = O.Workers;
  Config.CacheCapacity = O.CacheSize;
  Config.DiskCachePath = O.DiskCache;
  Config.DiskCacheCapacity = O.DiskCacheEntries;
  Config.DiskCacheMemoBytes = O.DiskCacheMemoBytes;

  return O.Stdio ? runBatch(O, std::move(Config))
                 : runSocket(O, std::move(Config));
}
