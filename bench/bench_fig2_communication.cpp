//===- bench/bench_fig2_communication.cpp - Experiment E1 -------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Experiment E1 (DESIGN.md): the paper's Figure 1 -> Figure 2 claim. The
// naive placement exchanges N messages with no latency hiding; the
// GIVE-N-TAKE placement needs exactly one message and hides its latency
// behind the independent i loop. Regenerates the comparison for a sweep
// of N and benchmarks the analysis itself.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace gnt;
using namespace gnt::bench;

namespace {

const char *Fig1 = R"(
distribute x
array a, y, z, u
do i = 1, n
  y(i) = 1
enddo
if (test) then
  do j = 1, n
    z(j) = 1
  enddo
  do k = 1, n
    u(k) = x(a(k))
  enddo
else
  do l = 1, n
    u(l) = x(a(l))
  enddo
endif
)";

void report() {
  std::printf("== E1: Figure 1 -> Figure 2 (READ placement quality) ==\n");
  std::printf("Paper claim: naive = N messages, no hiding; GIVE-N-TAKE = 1\n"
              "message, latency hidden behind the i loop.\n\n");
  Built B = buildSource(Fig1);
  CommPlan Gnt = generateComm(B.Prog, B.G, B.Ifg);
  CommPlan Naive = naivePlacement(B.Prog, B.G, B.Ifg);
  CommPlan Vec = vectorizedPlacement(B.Prog, B.G, B.Ifg);
  CommPlan Lcm = lcmPlacement(B.Prog, B.G, B.Ifg);

  for (long long N : {16, 64, 256, 1024}) {
    SimConfig Config;
    Config.Params["n"] = N;
    Config.Params["test"] = 1;
    Config.Latency = 100.0;
    std::printf("N = %lld:\n", N);
    rowHeader();
    runRow("naive", B, Naive, Config);
    runRow("lcm", B, Lcm, Config);
    runRow("vectorized", B, Vec, Config);
    runRow("give-n-take", B, Gnt, Config);
    std::printf("\n");
  }
}

void BM_Fig2GntAnalysis(benchmark::State &State) {
  Built B = buildSource(Fig1);
  for (auto _ : State) {
    CommPlan Plan = generateComm(B.Prog, B.G, B.Ifg);
    benchmark::DoNotOptimize(Plan.Anchored.size());
  }
}
BENCHMARK(BM_Fig2GntAnalysis);

void BM_Fig2Pipeline(benchmark::State &State) {
  for (auto _ : State) {
    Built B = buildSource(Fig1);
    CommPlan Plan = generateComm(B.Prog, B.G, B.Ifg);
    benchmark::DoNotOptimize(Plan.Anchored.size());
  }
}
BENCHMARK(BM_Fig2Pipeline);

} // namespace

int main(int argc, char **argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
