//===- bench/bench_ablations.cpp - Design-choice ablations ------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablates the framework's distinguishing design choices on a fixed suite
// of generated programs, isolating the contribution of each (DESIGN.md
// §5 calls these out):
//
//   split      — non-atomicity: split send/receive vs atomic operations
//   hoist      — zero-trip hoisting vs the per-loop opt-out
//   free-defs  — exploiting definitions as free production
//                (owner-computes disables it, along with WRITEs)
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace gnt;
using namespace gnt::bench;

namespace {

struct Tally {
  double Messages = 0, Volume = 0, Exposed = 0, Wasted = 0, Time = 0;
  unsigned Errors = 0;
};

Tally runSuite(const CommOptions &Opts) {
  Tally T;
  for (unsigned Seed = 1; Seed <= 16; ++Seed) {
    GenConfig C;
    C.Seed = Seed;
    C.TargetStmts = 40;
    C.GotoProb = 0.0; // Keep the AFTER problems exact for this study.
    Built B;
    B.Prog = generateRandomProgram(C);
    CfgBuildResult CfgRes = buildCfg(B.Prog);
    B.G = std::move(CfgRes.G);
    auto IfgRes = IntervalFlowGraph::build(B.G);
    B.Ifg = std::move(*IfgRes.Ifg);

    CommPlan Plan = generateComm(B.Prog, B.G, B.Ifg, Opts);
    SimConfig Config;
    Config.Params["n"] = 24;
    Config.Latency = 150.0;
    Config.BranchSeed = Seed;
    SimStats S = simulate(B.Prog, Plan, Config);
    T.Messages += static_cast<double>(S.Messages);
    T.Volume += static_cast<double>(S.Volume);
    T.Exposed += S.ExposedLatency;
    T.Wasted += static_cast<double>(S.Wasted);
    T.Time += S.totalTime(Config);
    T.Errors += S.ok() ? 0 : 1;
  }
  return T;
}

void row(const char *Name, const Tally &T) {
  std::printf("  %-22s | %9.0f | %9.0f | %11.0f | %7.0f | %11.0f | %u\n",
              Name, T.Messages, T.Volume, T.Exposed, T.Wasted, T.Time,
              T.Errors);
}

void report() {
  std::printf("== Ablation study: the framework's design choices ==\n"
              "(16 random structured programs, N = 24, latency = 150)\n\n");
  std::printf("  %-22s | %9s | %9s | %11s | %7s | %11s | %s\n", "variant",
              "messages", "volume", "exposed", "wasted", "total time",
              "errors");

  CommOptions Full; // All features on.
  row("full framework", runSuite(Full));

  CommOptions NoSplit;
  NoSplit.Atomic = true;
  row("- split send/recv", runSuite(NoSplit));

  CommOptions NoHoist;
  NoHoist.HoistZeroTrip = false;
  row("- zero-trip hoisting", runSuite(NoHoist));

  CommOptions Owner;
  Owner.OwnerComputes = true;
  row("- free defs (owner)", runSuite(Owner));

  CommOptions Bare;
  Bare.Atomic = true;
  Bare.HoistZeroTrip = false;
  Bare.OwnerComputes = true;
  row("bare (all off)", runSuite(Bare));

  std::printf(
      "\nReading: removing the send/receive split leaves message counts\n"
      "unchanged but exposes extra latency on every transfer; removing\n"
      "zero-trip hoisting multiplies messages by trip counts. The\n"
      "owner-computes row is not a pure ablation: it changes the\n"
      "computation rule itself (all WRITE traffic disappears, and reads\n"
      "of locally produced data must be re-fetched), so compare its read\n"
      "counts, not its totals.\n\n");
}

void BM_FullAnalysis(benchmark::State &State) {
  Built B = buildRandom(1, 40);
  for (auto _ : State) {
    CommPlan Plan = generateComm(B.Prog, B.G, B.Ifg);
    benchmark::DoNotOptimize(Plan.Anchored.size());
  }
}
BENCHMARK(BM_FullAnalysis);

void BM_ReadsOnlyAnalysis(benchmark::State &State) {
  Built B = buildRandom(1, 40);
  CommOptions Opts;
  Opts.GenerateWrites = false;
  for (auto _ : State) {
    CommPlan Plan = generateComm(B.Prog, B.G, B.Ifg, Opts);
    benchmark::DoNotOptimize(Plan.Anchored.size());
  }
}
BENCHMARK(BM_ReadsOnlyAnalysis);

} // namespace

int main(int argc, char **argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
