//===- bench/bench_fuzz_oracle.cpp - Fuzzing oracle cost profile ------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Per-input cost of the fuzzer's layered oracle, and how the budget
// splits across layers. The oracle is the fuzzer's inner loop — inputs
// per second is the campaign's throughput — so the layer breakdown
// (frontend/audit vs artifact differential vs trace simulation vs the
// metamorphic pass) documents where a smoke run's 60-second budget goes
// and which toggle to reach for when it regresses. Also measures the
// end-to-end cost of minimizing one injected-fault repro, the path a
// real finding takes before landing in tests/corpus/.
//
//===----------------------------------------------------------------------===//

#include "dataflow/GiveNTake.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Minimizer.h"
#include "fuzz/Oracle.h"
#include "gen/RandomProgram.h"
#include "ir/AstPrinter.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

using namespace gnt;
using namespace gnt::fuzz;

namespace {

/// One program per structure bucket: the oracle's cost is dominated by
/// program shape (nesting, jump count, universe width), so the suite
/// spans all of them rather than averaging one shape.
std::vector<std::string> bucketSuite() {
  std::vector<std::string> Suite;
  for (unsigned Bucket = 0; Bucket != NumGenBuckets; ++Bucket)
    Suite.push_back(AstPrinter().print(
        generateRandomProgram(genConfigForBucket(Bucket, 1))));
  return Suite;
}

/// Oracle throughput with a chosen layer configuration.
void runSuite(benchmark::State &State, const OracleOptions &Opts) {
  std::vector<std::string> Suite = bucketSuite();
  for (auto _ : State)
    for (const std::string &Source : Suite) {
      OracleOutcome O = runOracle(Source, Opts);
      benchmark::DoNotOptimize(O);
    }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Suite.size()));
}

void BM_OracleFull(benchmark::State &State) {
  runSuite(State, OracleOptions{});
}

void BM_OracleNoMetamorphic(benchmark::State &State) {
  OracleOptions Opts;
  Opts.Metamorphic = false;
  runSuite(State, Opts);
}

void BM_OracleNoSimulate(benchmark::State &State) {
  OracleOptions Opts;
  Opts.Metamorphic = false;
  Opts.Simulate = false;
  runSuite(State, Opts);
}

void BM_OracleFrontendAndAuditOnly(benchmark::State &State) {
  OracleOptions Opts;
  Opts.Metamorphic = false;
  Opts.Simulate = false;
  Opts.Differential = false;
  runSuite(State, Opts);
}

/// The finding path end to end: oracle detection of the injected
/// fused-sweep fault plus class-preserving minimization of the repro.
void BM_MinimizeInjectedFault(benchmark::State &State) {
  const char *Padded = R"(
distribute x, y
array a, w, z
do i = 1, n
  w(i) = x(a(i))
enddo
do k = 1, n
  z(k) = x(k) + y(k)
enddo
if (t(i1)) then
else
  w(1) = x(1) + 24
endif
)";
  detail::InjectFusedSweepBug.store(true);
  std::string Class = findingClass(runOracle(Padded).Findings.at(0).Kind);
  for (auto _ : State) {
    std::string Small = minimizeSource(
        Padded,
        [&](const std::string &Candidate) {
          for (const OracleFinding &F : runOracle(Candidate).Findings)
            if (findingClass(F.Kind) == Class)
              return true;
          return false;
        },
        400);
    benchmark::DoNotOptimize(Small);
  }
  detail::InjectFusedSweepBug.store(false);
}

} // namespace

BENCHMARK(BM_OracleFull)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OracleNoMetamorphic)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OracleNoSimulate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OracleFrontendAndAuditOnly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MinimizeInjectedFault)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
