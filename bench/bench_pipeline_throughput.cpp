//===- bench/bench_pipeline_throughput.cpp - Service throughput -------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Throughput of the batch compilation service over generated workloads:
// jobs/sec as the worker count scales (the paper's O(E) elimination
// solver gets a throughput benchmark, not only a latency one), and the
// effect of the content-hash result cache at several repeat ratios.
// Every run writes BENCH_pipeline.json (BenchJson.h schema) to the
// working directory, so local runs extend the same service perf
// trajectory that CI uploads.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"

#include "service/BatchServer.h"

#include "gen/RandomProgram.h"
#include "ir/AstPrinter.h"
#include "support/Json.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

using namespace gnt;

namespace {

/// A batch of inline-source request lines over seeded random programs.
/// \p DistinctSeeds controls the repeat ratio: Count jobs drawing from
/// fewer seeds means a hotter cache.
std::vector<std::string> makeWorkload(unsigned Count, unsigned DistinctSeeds,
                                      bool Audit) {
  std::vector<std::string> Lines;
  Lines.reserve(Count);
  for (unsigned I = 0; I < Count; ++I) {
    GenConfig Config;
    Config.Seed = 1 + (I % DistinctSeeds);
    Config.TargetStmts = 24;
    std::string Source = AstPrinter().print(generateRandomProgram(Config));
    std::string Line = "{\"id\":\"job-" + std::to_string(I) +
                       "\",\"source\":\"" + jsonEscape(Source) + "\"";
    if (Audit)
      Line += ",\"options\":{\"audit\":true}";
    Line += "}";
    Lines.push_back(std::move(Line));
  }
  return Lines;
}

/// Jobs/sec vs worker count, cold cache (every job distinct, caching
/// off so the measurement is pure pipeline work + scheduling).
void BM_BatchThroughput(benchmark::State &State) {
  unsigned Workers = static_cast<unsigned>(State.range(0));
  unsigned Jobs = 96;
  std::vector<std::string> Lines =
      makeWorkload(Jobs, /*DistinctSeeds=*/Jobs, /*Audit=*/false);
  for (auto _ : State) {
    ServiceConfig Config;
    Config.Workers = Workers;
    Config.CacheCapacity = 0;
    BatchServer Server(Config);
    std::vector<std::string> Responses = Server.run(Lines);
    benchmark::DoNotOptimize(Responses);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * Jobs);
  State.counters["workers"] = Workers;
}

/// Same scaling curve with the audit on: heavier per-job work, which is
/// where extra workers pay off most.
void BM_BatchThroughputAudited(benchmark::State &State) {
  unsigned Workers = static_cast<unsigned>(State.range(0));
  unsigned Jobs = 48;
  std::vector<std::string> Lines =
      makeWorkload(Jobs, /*DistinctSeeds=*/Jobs, /*Audit=*/true);
  for (auto _ : State) {
    ServiceConfig Config;
    Config.Workers = Workers;
    Config.CacheCapacity = 0;
    BatchServer Server(Config);
    std::vector<std::string> Responses = Server.run(Lines);
    benchmark::DoNotOptimize(Responses);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * Jobs);
  State.counters["workers"] = Workers;
}

/// Cache effectiveness: fixed job count, shrinking distinct-program
/// pool. Reports the measured hit rate alongside jobs/sec.
void BM_CacheHitRatio(benchmark::State &State) {
  unsigned DistinctSeeds = static_cast<unsigned>(State.range(0));
  unsigned Jobs = 96;
  std::vector<std::string> Lines =
      makeWorkload(Jobs, DistinctSeeds, /*Audit=*/false);
  double HitRate = 0;
  for (auto _ : State) {
    ServiceConfig Config;
    Config.Workers = 2;
    Config.CacheCapacity = 1024;
    BatchServer Server(Config);
    std::vector<std::string> Responses = Server.run(Lines);
    benchmark::DoNotOptimize(Responses);
    HitRate = Server.metrics().cacheHitRate();
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * Jobs);
  State.counters["distinct"] = DistinctSeeds;
  State.counters["hit_rate"] = HitRate;
}

} // namespace

// UseRealTime: the work happens on pool threads, so CPU time of the
// benchmark thread would flatter every configuration; jobs/sec must be
// wall clock.
BENCHMARK(BM_BatchThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_BatchThroughputAudited)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_CacheHitRatio)->Arg(96)->Arg(24)->Arg(6)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

int main(int argc, char **argv) {
  return gnt::bench::runBenchmarksWithTrajectory(argc, argv,
                                                 "BENCH_pipeline.json");
}
