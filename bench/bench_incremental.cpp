//===- bench/bench_incremental.cpp - Incremental re-solve scaling -----------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Edit-distance sweep over the incremental stage pipeline: a program
// with L independent loops is compiled into a warm stage cache, then a
// variant with E edited loop bodies is re-compiled incrementally. The
// interesting curve is time-per-recompile and the measured re-solve
// footprint (intervals_resolved / intervals_total) as E grows from one
// loop to all of them; the cold-compile baseline at the same program
// size anchors the comparison. A single-loop edit re-solving a strict
// subset of intervals is the feature's acceptance bar, so the counters
// that prove it ride along in the trajectory. Every run writes
// BENCH_incremental.json (BenchJson.h schema).
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"

#include "service/Pipeline.h"
#include "service/StageCache.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace gnt;

namespace {

/// L independent loops over distinct owned arrays, all consuming the
/// distributed x and y. Editing loop J moves its y(i) use from the
/// first body statement to the second: every reference pattern exists
/// in both versions, so the item universe and loop forest — and hence
/// the solve memo's structure digest — are unchanged, and exactly the
/// edited loops' init rows differ.
std::string makeProgram(unsigned Loops, unsigned Edits) {
  std::string S = "distribute x, y\narray";
  for (unsigned J = 0; J != Loops; ++J) {
    S += (J ? ", u" : " u") + std::to_string(J);
    S += ", w" + std::to_string(J);
  }
  S += "\n";
  for (unsigned J = 0; J != Loops; ++J) {
    const std::string U = "u" + std::to_string(J);
    const std::string V = "w" + std::to_string(J);
    const bool Edit = J < Edits;
    S += "do i = 1, n\n";
    S += "  " + U + "(i) = x(i)" + (Edit ? "" : " + y(i)") + "\n";
    S += "  " + V + "(i) = x(i)" + (Edit ? " + y(i)" : "") + "\n";
    S += "enddo\n";
  }
  return S;
}

PipelineOptions incrementalOptions() {
  PipelineOptions O;
  O.Annotate = true;
  O.Incremental = true;
  return O;
}

/// Re-compile after editing E of 16 loop bodies, against a stage cache
/// primed with the unedited program. The per-iteration prime is
/// untimed; the measured region is exactly one incremental compile.
void BM_IncrementalEdit(benchmark::State &State) {
  const unsigned Loops = 16;
  const unsigned Edits = static_cast<unsigned>(State.range(0));
  const std::string Base = makeProgram(Loops, 0);
  const std::string Edited = makeProgram(Loops, Edits);
  const PipelineOptions Opts = incrementalOptions();
  StageCacheStats Last;
  for (auto _ : State) {
    State.PauseTiming();
    StageCache Warm;
    (void)Pipeline(Opts).compile(Base, &Warm);
    State.ResumeTiming();
    PipelineResult R = Pipeline(Opts).compile(Edited, &Warm);
    benchmark::DoNotOptimize(R);
    State.PauseTiming();
    Last = Warm.statsSnapshot();
    State.ResumeTiming();
  }
  State.counters["edited"] = Edits;
  State.counters["intervals_resolved"] =
      static_cast<double>(Last.Inc.IntervalsResolved);
  State.counters["intervals_total"] =
      static_cast<double>(Last.Inc.IntervalsTotal);
  State.counters["nodes_resolved"] =
      static_cast<double>(Last.Inc.NodesResolved);
  State.counters["nodes_total"] = static_cast<double>(Last.Inc.NodesTotal);
}

/// The anchor: a cold compile of the edited program with no cache at
/// all — what every request costs without the stage pipeline.
void BM_ColdCompile(benchmark::State &State) {
  const unsigned Loops = 16;
  const std::string Edited =
      makeProgram(Loops, static_cast<unsigned>(State.range(0)));
  PipelineOptions Opts;
  Opts.Annotate = true;
  for (auto _ : State) {
    PipelineResult R = Pipeline(Opts).compile(Edited);
    benchmark::DoNotOptimize(R);
  }
  State.counters["edited"] = static_cast<double>(State.range(0));
}

/// The no-edit floor: an identical re-compile is a pure memo hit (the
/// arena is re-exported zero-copy), bounding what incrementality can
/// ever save.
void BM_MemoHit(benchmark::State &State) {
  const std::string Base = makeProgram(16, 0);
  const PipelineOptions Opts = incrementalOptions();
  StageCache Warm;
  (void)Pipeline(Opts).compile(Base, &Warm);
  for (auto _ : State) {
    PipelineResult R = Pipeline(Opts).compile(Base, &Warm);
    benchmark::DoNotOptimize(R);
  }
}

} // namespace

BENCHMARK(BM_IncrementalEdit)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ColdCompile)->Arg(1)->Arg(16)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MemoHit)->Unit(benchmark::kMicrosecond);

int main(int argc, char **argv) {
  return gnt::bench::runBenchmarksWithTrajectory(argc, argv,
                                                 "BENCH_incremental.json");
}
