//===- bench/BenchJson.h - Perf-trajectory JSON reporter -------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// A ConsoleReporter wrapper that additionally records every benchmark
// run and writes a compact trajectory file to the working directory
// when the process exits benchmarking. Both bench_solver_scaling
// (BENCH_solver.json) and bench_pipeline_throughput
// (BENCH_pipeline.json) emit the same schema, so local runs and the CI
// artifact line up point for point:
//
//   {"schema": "gnt-bench-v1",
//    "benchmarks": [
//      {"name": "BM_ArenaSolveWide/4096",
//       "config": {"items": 4096.0, ...},   // the run's counters
//       "metric": 12345.678,                // real time per iteration
//       "unit": "ns"}, ...]}
//
// Aggregate rows (mean/median/stddev from --benchmark_repetitions) are
// skipped: the trajectory is one point per configuration.
//
//===----------------------------------------------------------------------===//

#ifndef GNT_BENCH_BENCHJSON_H
#define GNT_BENCH_BENCHJSON_H

#include "support/Json.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace gnt::bench {

class TrajectoryReporter : public benchmark::ConsoleReporter {
public:
  explicit TrajectoryReporter(std::string Path) : Path(std::move(Path)) {}

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      if (R.error_occurred || R.run_type == Run::RT_Aggregate)
        continue;
      Row Record;
      Record.Name = R.benchmark_name();
      Record.Metric = R.GetAdjustedRealTime();
      Record.Unit = benchmark::GetTimeUnitString(R.time_unit);
      for (const auto &[Name, Counter] : R.counters)
        Record.Config.emplace_back(Name, Counter.value);
      Rows.push_back(std::move(Record));
    }
    ConsoleReporter::ReportRuns(Runs);
  }

  void Finalize() override {
    ConsoleReporter::Finalize();
    write();
  }

private:
  struct Row {
    std::string Name;
    std::vector<std::pair<std::string, double>> Config;
    double Metric = 0;
    std::string Unit;
  };

  static void jsonDouble(JsonWriter &W, double V) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.3f", V);
    W.raw(Buf);
  }

  void write() const {
    JsonWriter W;
    W.beginObject();
    W.key("schema").value("gnt-bench-v1");
    W.beginArray("benchmarks");
    for (const Row &R : Rows) {
      W.beginObject();
      W.key("name").value(R.Name);
      W.key("config");
      W.beginObject();
      for (const auto &[Name, Value] : R.Config) {
        W.key(Name);
        jsonDouble(W, Value);
      }
      W.endObject();
      W.key("metric");
      jsonDouble(W, R.Metric);
      W.key("unit").value(R.Unit);
      W.endObject();
    }
    W.endArray();
    W.endObject();
    if (std::FILE *F = std::fopen(Path.c_str(), "w")) {
      std::fputs(W.str().c_str(), F);
      std::fputc('\n', F);
      std::fclose(F);
      std::printf("trajectory written to %s\n", Path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    }
  }

  std::string Path;
  std::vector<Row> Rows;
};

/// Shared driver: initialize, run everything through a
/// TrajectoryReporter, write \p Path.
inline int runBenchmarksWithTrajectory(int argc, char **argv,
                                       const std::string &Path) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  TrajectoryReporter Reporter(Path);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  return 0;
}

} // namespace gnt::bench

#endif // GNT_BENCH_BENCHJSON_H
