//===- bench/bench_fig14_annotation.cpp - Experiment E5 ---------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Experiment E5 (DESIGN.md): the full Figure 11 -> Figure 14 pipeline —
// jump out of a loop, balanced sends on both exit paths, receives merged
// at label 77. Prints the regenerated annotation, measures its dynamic
// behavior over both goto outcomes, and times every pipeline stage.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace gnt;
using namespace gnt::bench;

namespace {

const char *Fig11 = R"(
distribute x, y
array a, b, w, z
do i = 1, n
  y(a(i)) = 0
  if (test(i)) goto 77
enddo
do j = 1, n
  w(j) = 0
enddo
77 do k = 1, n
  z(k) = x(k + 10) + y(b(k))
enddo
)";

void report() {
  std::printf("== E5: Figure 11 -> Figure 14 (the paper's running example)"
              " ==\n\n");
  Built B = buildSource(Fig11);
  CommPlan Gnt = generateComm(B.Prog, B.G, B.Ifg);
  std::printf("--- regenerated annotation ---\n%s\n",
              Gnt.annotate(B.Prog).c_str());

  CommPlan Naive = naivePlacement(B.Prog, B.G, B.Ifg);
  std::printf("--- dynamic comparison, N = 256, averaged over 8 goto"
              " outcomes ---\n");
  rowHeader();
  for (auto [Name, Plan] :
       {std::pair<const char *, const CommPlan *>{"naive", &Naive},
        {"give-n-take", &Gnt}}) {
    SimStats Sum;
    SimConfig Config;
    Config.Params["n"] = 256;
    Config.Latency = 100.0;
    for (unsigned Seed = 1; Seed <= 8; ++Seed) {
      Config.BranchSeed = Seed;
      SimStats S = simulate(B.Prog, *Plan, Config);
      Sum.Messages += S.Messages;
      Sum.Volume += S.Volume;
      Sum.ExposedLatency += S.ExposedLatency;
      Sum.Work += S.Work;
      Sum.Redundant += S.Redundant;
      if (!S.ok())
        Sum.Errors = S.Errors;
    }
    Sum.Messages /= 8;
    Sum.Volume /= 8;
    Sum.ExposedLatency /= 8;
    Sum.Work /= 8;
    Sum.Redundant /= 8;
    std::printf("  %-12s | %8llu | %8llu | %10.0f | %9.0f | %9llu | %s\n",
                Name, Sum.Messages, Sum.Volume, Sum.ExposedLatency,
                Sum.totalTime(Config), Sum.Redundant,
                Sum.ok() ? "ok" : Sum.Errors.front().c_str());
  }
  std::printf("\n");
}

void BM_ParseFig11(benchmark::State &State) {
  for (auto _ : State) {
    ParseResult R = parseProgram(Fig11);
    benchmark::DoNotOptimize(R.Prog.getBody().size());
  }
}
BENCHMARK(BM_ParseFig11);

void BM_CfgFig11(benchmark::State &State) {
  ParseResult R = parseProgram(Fig11);
  for (auto _ : State) {
    CfgBuildResult C = buildCfg(R.Prog);
    benchmark::DoNotOptimize(C.G.size());
  }
}
BENCHMARK(BM_CfgFig11);

void BM_IntervalFig11(benchmark::State &State) {
  ParseResult R = parseProgram(Fig11);
  for (auto _ : State) {
    CfgBuildResult C = buildCfg(R.Prog);
    auto Ifg = IntervalFlowGraph::build(C.G);
    benchmark::DoNotOptimize(Ifg.Ifg->size());
  }
}
BENCHMARK(BM_IntervalFig11);

void BM_SolveFig11Read(benchmark::State &State) {
  Built B = buildSource(Fig11);
  RefAnalysisResult Refs = analyzeReferences(B.Prog, B.G);
  GntProblem Read, Write;
  buildCommProblems(Refs, B.G, B.Ifg, CommOptions(), Read, Write);
  for (auto _ : State) {
    GntRun Run = runGiveNTake(B.Ifg, Read);
    benchmark::DoNotOptimize(Run.Result.Eager.ResIn.size());
  }
}
BENCHMARK(BM_SolveFig11Read);

void BM_SolveFig11Write(benchmark::State &State) {
  Built B = buildSource(Fig11);
  RefAnalysisResult Refs = analyzeReferences(B.Prog, B.G);
  GntProblem Read, Write;
  buildCommProblems(Refs, B.G, B.Ifg, CommOptions(), Read, Write);
  for (auto _ : State) {
    GntRun Run = runGiveNTake(B.Ifg, Write);
    benchmark::DoNotOptimize(Run.Result.Eager.ResIn.size());
  }
}
BENCHMARK(BM_SolveFig11Write);

void BM_AnnotateFig11(benchmark::State &State) {
  Built B = buildSource(Fig11);
  CommPlan Plan = generateComm(B.Prog, B.G, B.Ifg);
  for (auto _ : State) {
    std::string Out = Plan.annotate(B.Prog);
    benchmark::DoNotOptimize(Out.size());
  }
}
BENCHMARK(BM_AnnotateFig11);

} // namespace

int main(int argc, char **argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
