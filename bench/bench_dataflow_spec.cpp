//===- bench/bench_dataflow_spec.cpp - User-analysis solve cost -------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Solve cost of the user-specified analyses (analysis/SpecCompile.h):
// for each built-in spec, the iterative worklist oracle against the
// flat arena round-robin sweeps — the two backends every production
// run compares byte for byte — across program sizes, plus the
// end-to-end differential run (universe construction + both solves +
// identity check) and the sharded/compressed strategy points.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

#include "analysis/SpecCompile.h"
#include "analysis/SpecLang.h"

#include <benchmark/benchmark.h>

using namespace gnt;
using namespace gnt::bench;

namespace {

/// Compiles builtin \p Index for \p B (universe construction included).
CompiledAnalysis compileBuiltin(const Built &B, unsigned Index) {
  const auto &[Name, Text] = builtinAnalysisSpecs()[Index];
  SpecParseResult PR = parseAndLintAnalysisSpec(Text);
  if (!PR.ok())
    throw std::runtime_error("builtin spec failed to lint: " + Name);
  SpecUniverseData Data =
      buildSpecUniverse(PR.Spec->Universe, B.Prog, B.G, B.Ifg);
  return compileAnalysisSpec(*PR.Spec, Data, B.Ifg.size());
}

void setSpecCounters(benchmark::State &State, const Built &B,
                     const CompiledAnalysis &C) {
  State.counters["nodes"] = B.G.size();
  State.counters["items"] = C.UniverseSize;
}

void BM_SpecIterative(benchmark::State &State) {
  Built B = buildRandom(3, static_cast<unsigned>(State.range(1)));
  CompiledAnalysis C = compileBuiltin(B, static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    DataflowResult R = runAnalysisIterative(C, B.Ifg);
    benchmark::DoNotOptimize(R.In.size());
  }
  setSpecCounters(State, B, C);
}

void BM_SpecArena(benchmark::State &State) {
  Built B = buildRandom(3, static_cast<unsigned>(State.range(1)));
  CompiledAnalysis C = compileBuiltin(B, static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    ArenaSpecResult R = runAnalysisArena(C, B.Ifg);
    benchmark::DoNotOptimize(R.Sweeps);
  }
  setSpecCounters(State, B, C);
}

/// One full production run: both backends plus the byte-identity check.
void BM_SpecDifferential(benchmark::State &State) {
  Built B = buildRandom(3, static_cast<unsigned>(State.range(1)));
  const std::string &Name =
      builtinAnalysisSpecs()[static_cast<unsigned>(State.range(0))].first;
  for (auto _ : State) {
    AnalysisRun R = runAnalysisSpec(Name, B.Prog, B.G, B.Ifg);
    if (!R.ok())
      throw std::runtime_error("differential failed for " + Name);
    benchmark::DoNotOptimize(R.solutionHash());
  }
  State.counters["nodes"] = B.G.size();
}

/// Strategy points on the widest builtin universe (defs): serial,
/// sharded, compressed, both.
void BM_SpecArenaStrategies(benchmark::State &State) {
  Built B = buildRandom(3, 400);
  CompiledAnalysis C = compileBuiltin(B, 3); // reaching over defs
  unsigned Shards = static_cast<unsigned>(State.range(0));
  bool Compress = State.range(1) != 0;
  for (auto _ : State) {
    ArenaSpecResult R = runAnalysisArena(C, B.Ifg, Shards, Compress);
    benchmark::DoNotOptimize(R.Sweeps);
  }
  setSpecCounters(State, B, C);
}

void forEachBuiltinAndSize(benchmark::internal::Benchmark *Bench) {
  for (unsigned Builtin = 0; Builtin != 4; ++Builtin)
    for (unsigned Stmts : {100u, 400u, 1600u})
      Bench->Args({static_cast<long>(Builtin), static_cast<long>(Stmts)});
}

} // namespace

BENCHMARK(BM_SpecIterative)->Apply(forEachBuiltinAndSize);
BENCHMARK(BM_SpecArena)->Apply(forEachBuiltinAndSize);
BENCHMARK(BM_SpecDifferential)->Apply(forEachBuiltinAndSize);
BENCHMARK(BM_SpecArenaStrategies)
    ->Args({0, 0})
    ->Args({7, 0})
    ->Args({0, 1})
    ->Args({7, 1});

int main(int argc, char **argv) {
  return gnt::bench::runBenchmarksWithTrajectory(argc, argv,
                                                 "BENCH_dataflow_spec.json");
}
