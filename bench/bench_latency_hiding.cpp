//===- bench/bench_latency_hiding.cpp - Experiment E9 (latency) -------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Experiment E9, latency axis (DESIGN.md): the non-atomicity claim. A
// split Read_Send/Read_Recv pair overlaps message latency with the
// independent work between the two; atomic placement (a classical-PRE
// style single point) pays the full latency. We sweep the machine latency
// and the amount of independent work and report the exposed latency and
// total-time crossover.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace gnt;
using namespace gnt::bench;

namespace {

/// A kernel with `Work` statements of independent computation between the
/// natural send point (top of program) and the consumer loop.
std::string kernel() {
  return R"(
distribute x
array u, w
do i = 1, work
  w(i) = 3 * i
enddo
do k = 1, n
  u(k) = x(k)
enddo
)";
}

void report() {
  std::printf("== E9 (latency axis): split send/receive vs atomic ==\n");
  std::printf("Exposed latency of the x(1:n) transfer; work loop runs\n"
              "`work` independent statements the split placement hides\n"
              "behind.\n\n");
  Built B = buildSource(kernel());
  CommPlan Split = generateComm(B.Prog, B.G, B.Ifg);
  CommOptions AtomicOpts;
  AtomicOpts.Atomic = true;
  CommPlan Atomic = generateComm(B.Prog, B.G, B.Ifg, AtomicOpts);

  std::printf("  %8s | %8s | %14s | %14s\n", "latency", "work",
              "split exposed", "atomic exposed");
  for (double Latency : {50.0, 200.0, 800.0}) {
    for (long long Work : {0, 100, 400, 1600}) {
      SimConfig Config;
      Config.Params["n"] = 64;
      Config.Params["work"] = Work;
      Config.Latency = Latency;
      SimStats SSplit = simulate(B.Prog, Split, Config);
      SimStats SAtomic = simulate(B.Prog, Atomic, Config);
      std::printf("  %8.0f | %8lld | %14.0f | %14.0f\n", Latency, Work,
                  SSplit.ExposedLatency, SAtomic.ExposedLatency);
    }
  }
  std::printf("\nExpected shape: split exposure drops to zero once work\n"
              ">= latency; atomic exposure always equals the latency.\n\n");
}

void BM_SplitAnalysis(benchmark::State &State) {
  Built B = buildSource(kernel());
  for (auto _ : State) {
    CommPlan Plan = generateComm(B.Prog, B.G, B.Ifg);
    benchmark::DoNotOptimize(Plan.Anchored.size());
  }
}
BENCHMARK(BM_SplitAnalysis);

} // namespace

int main(int argc, char **argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
