//===- bench/bench_fig3_write_read.cpp - Experiment E2 ----------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Experiment E2 (DESIGN.md): the paper's Figure 3 — WRITE generation as
// an AFTER problem, with local definitions satisfying later reads "for
// free". Regenerates the placement, compares against baselines that
// cannot exploit the free definitions, and sweeps the owner-computes
// option.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace gnt;
using namespace gnt::bench;

namespace {

const char *Fig3 = R"(
distribute x
array a, y, w
if (test) then
  do i = 1, n
    x(a(i)) = 1
  enddo
  do j = 1, n
    y(j) = x(j + 5)
  enddo
endif
do k = 1, n
  w(k) = x(k + 5)
enddo
)";

void report() {
  std::printf("== E2: Figure 3 (WRITE placement + free definitions) ==\n");
  std::printf("Paper claim: one Write_Send/Recv pair for x(a(1:N)) between\n"
              "the loops; READs of x(6:N+5) once per path.\n\n");
  Built B = buildSource(Fig3);
  CommPlan Gnt = generateComm(B.Prog, B.G, B.Ifg);
  CommPlan Naive = naivePlacement(B.Prog, B.G, B.Ifg);
  CommPlan Vec = vectorizedPlacement(B.Prog, B.G, B.Ifg);
  CommPlan Lcm = lcmPlacement(B.Prog, B.G, B.Ifg);

  for (long long Test : {1, 0}) {
    SimConfig Config;
    Config.Params["n"] = 256;
    Config.Params["test"] = Test;
    Config.Latency = 100.0;
    std::printf("N = 256, branch %s:\n", Test ? "taken" : "not taken");
    rowHeader();
    runRow("naive", B, Naive, Config);
    runRow("lcm", B, Lcm, Config);
    runRow("vectorized", B, Vec, Config);
    runRow("give-n-take", B, Gnt, Config);
    std::printf("\n");
  }

  // Static placement counts: the shape of Figure 3's answer.
  auto Counts = Gnt.staticCounts();
  std::printf("static GIVE-N-TAKE placements: %u Write_Send, %u Write_Recv, "
              "%u Read_Send, %u Read_Recv\n\n",
              Counts[CommOpKind::WriteSend], Counts[CommOpKind::WriteRecv],
              Counts[CommOpKind::ReadSend], Counts[CommOpKind::ReadRecv]);
}

void BM_Fig3BothProblems(benchmark::State &State) {
  Built B = buildSource(Fig3);
  for (auto _ : State) {
    CommPlan Plan = generateComm(B.Prog, B.G, B.Ifg);
    benchmark::DoNotOptimize(Plan.Anchored.size());
  }
}
BENCHMARK(BM_Fig3BothProblems);

void BM_Fig3OwnerComputes(benchmark::State &State) {
  Built B = buildSource(Fig3);
  CommOptions Opts;
  Opts.OwnerComputes = true;
  for (auto _ : State) {
    CommPlan Plan = generateComm(B.Prog, B.G, B.Ifg, Opts);
    benchmark::DoNotOptimize(Plan.Anchored.size());
  }
}
BENCHMARK(BM_Fig3OwnerComputes);

} // namespace

int main(int argc, char **argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
