//===- bench/bench_solver_scaling.cpp - Experiment E8 -----------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Experiment E8 (DESIGN.md): the paper's Section 5.2 complexity claim —
// the elimination solver evaluates each equation once per node, giving
// O(E) set operations ("linear in the program size in most cases"). We
// sweep generated program sizes and nesting depths, reporting time per
// node, and compare against the iterative bitvector solver of the LCM
// baseline whose pass count grows with loop depth.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

#include "support/SimdKernels.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <random>
#include <string_view>

using namespace gnt;
using namespace gnt::bench;

namespace {

void report() {
  std::printf("== E8: solver complexity (Section 5.2) ==\n");
  std::printf("Paper claim: each equation evaluated once per node -> O(E).\n"
              "Expect near-constant ns/node for GIVE-N-TAKE; the iterative\n"
              "LCM baseline repeats passes until a fixed point.\n\n");
  std::printf("  %8s | %8s | %8s\n", "stmts", "nodes", "lcm iters");
  for (unsigned Stmts : {50u, 100u, 200u, 400u, 800u, 1600u}) {
    Built B = buildRandom(5, Stmts);
    RefAnalysisResult Refs = analyzeReferences(B.Prog, B.G);
    GntProblem Read, Write;
    buildCommProblems(Refs, B.G, B.Ifg, CommOptions(), Read, Write);
    LcmResult L = lazyCodeMotion(B.G, Refs.Items.size(), Read.TakeInit,
                                 Read.StealInit, Read.GiveInit);
    std::printf("  %8u | %8u | %8u\n", Stmts, B.G.size(), L.Iterations);
  }
  std::printf("\n");
}

void BM_GntSolve(benchmark::State &State) {
  unsigned Stmts = static_cast<unsigned>(State.range(0));
  Built B = buildRandom(5, Stmts);
  RefAnalysisResult Refs = analyzeReferences(B.Prog, B.G);
  GntProblem Read, Write;
  buildCommProblems(Refs, B.G, B.Ifg, CommOptions(), Read, Write);
  for (auto _ : State) {
    GntResult R = solveGiveNTake(B.Ifg, Read);
    benchmark::DoNotOptimize(R.Take.size());
  }
  State.counters["nodes"] = B.G.size();
  State.counters["items"] = Refs.Items.size();
  State.counters["ns/node"] = benchmark::Counter(
      static_cast<double>(State.iterations()) * B.G.size(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_GntSolve)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Arg(800)
    ->Arg(1600)->Arg(3200);

void BM_LcmSolve(benchmark::State &State) {
  unsigned Stmts = static_cast<unsigned>(State.range(0));
  Built B = buildRandom(5, Stmts);
  RefAnalysisResult Refs = analyzeReferences(B.Prog, B.G);
  GntProblem Read, Write;
  buildCommProblems(Refs, B.G, B.Ifg, CommOptions(), Read, Write);
  for (auto _ : State) {
    LcmResult R = lazyCodeMotion(B.G, Refs.Items.size(), Read.TakeInit,
                                 Read.StealInit, Read.GiveInit);
    benchmark::DoNotOptimize(R.InsertAtEntry.size());
  }
  State.counters["nodes"] = B.G.size();
  State.counters["ns/node"] = benchmark::Counter(
      static_cast<double>(State.iterations()) * B.G.size(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_LcmSolve)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Arg(800)
    ->Arg(1600)->Arg(3200);

/// Nesting-depth sweep at fixed size: the elimination solver's pass count
/// does not depend on depth, the iterative one's does.
void BM_GntSolveDepth(benchmark::State &State) {
  unsigned Depth = static_cast<unsigned>(State.range(0));
  Built B = buildRandom(11, 400, Depth);
  RefAnalysisResult Refs = analyzeReferences(B.Prog, B.G);
  GntProblem Read, Write;
  buildCommProblems(Refs, B.G, B.Ifg, CommOptions(), Read, Write);
  for (auto _ : State) {
    GntResult R = solveGiveNTake(B.Ifg, Read);
    benchmark::DoNotOptimize(R.Take.size());
  }
  State.counters["nodes"] = B.G.size();
}
BENCHMARK(BM_GntSolveDepth)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_LcmSolveDepth(benchmark::State &State) {
  unsigned Depth = static_cast<unsigned>(State.range(0));
  Built B = buildRandom(11, 400, Depth);
  RefAnalysisResult Refs = analyzeReferences(B.Prog, B.G);
  GntProblem Read, Write;
  buildCommProblems(Refs, B.G, B.Ifg, CommOptions(), Read, Write);
  unsigned Iters = 0;
  for (auto _ : State) {
    LcmResult R = lazyCodeMotion(B.G, Refs.Items.size(), Read.TakeInit,
                                 Read.StealInit, Read.GiveInit);
    Iters = R.Iterations;
    benchmark::DoNotOptimize(R.InsertAtEntry.size());
  }
  State.counters["nodes"] = B.G.size();
  State.counters["iters"] = Iters;
}
BENCHMARK(BM_LcmSolveDepth)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

/// Graph construction cost (normalization + interval analysis).
void BM_IntervalBuild(benchmark::State &State) {
  unsigned Stmts = static_cast<unsigned>(State.range(0));
  GenConfig C;
  C.Seed = 5;
  C.TargetStmts = Stmts;
  Program Prog = generateRandomProgram(C);
  for (auto _ : State) {
    CfgBuildResult CfgRes = buildCfg(Prog);
    auto IfgRes = IntervalFlowGraph::build(CfgRes.G);
    benchmark::DoNotOptimize(IfgRes.Ifg->size());
  }
}
BENCHMARK(BM_IntervalBuild)->Arg(100)->Arg(400)->Arg(1600);

//===----------------------------------------------------------------------===//
// Wide-universe sweeps: arena vs classic evaluator, and item sharding
//===----------------------------------------------------------------------===//
//
// The communication problems of generated programs have universes of at
// most a few hundred items, too narrow to expose per-word costs. These
// sweeps keep the graph fixed and synthesize problems with universes up
// to 16k items (256 words per set), the regime the DataflowMatrix arena
// and --solver-shards target.

/// A seeded problem with \p Universe items over \p B's graph: every
/// node takes/gives/steals a sparse random selection.
GntProblem syntheticProblem(const Built &B, unsigned Universe,
                            unsigned Seed) {
  std::mt19937 Rng(Seed);
  unsigned N = B.Ifg.size();
  GntProblem P(N, Universe);
  for (unsigned Node = 0; Node != N; ++Node) {
    for (unsigned Draw = 0, E = 2 + Rng() % 6; Draw != E; ++Draw)
      P.TakeInit[Node].set(Rng() % Universe);
    for (unsigned Draw = 0, E = 1 + Rng() % 4; Draw != E; ++Draw)
      P.GiveInit[Node].set(Rng() % Universe);
    for (unsigned Draw = 0, E = Rng() % 3; Draw != E; ++Draw)
      P.StealInit[Node].set(Rng() % Universe);
  }
  return P;
}

void BM_ArenaSolveWide(benchmark::State &State) {
  unsigned Universe = static_cast<unsigned>(State.range(0));
  Built B = buildRandom(5, 400);
  GntProblem P = syntheticProblem(B, Universe, 99);
  for (auto _ : State) {
    GntResult R = solveGiveNTake(B.Ifg, P);
    benchmark::DoNotOptimize(R.Take.size());
  }
  State.counters["items"] = Universe;
  State.counters["nodes"] = B.Ifg.size();
}
BENCHMARK(BM_ArenaSolveWide)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

/// The pre-arena evaluator on the same problems: the speedup the arena
/// must hold is BM_ClassicSolveWide / BM_ArenaSolveWide >= 1.5 at 4096+
/// items.
void BM_ClassicSolveWide(benchmark::State &State) {
  unsigned Universe = static_cast<unsigned>(State.range(0));
  Built B = buildRandom(5, 400);
  GntProblem P = syntheticProblem(B, Universe, 99);
  for (auto _ : State) {
    GntResult R = solveGiveNTakeClassic(B.Ifg, P);
    benchmark::DoNotOptimize(R.Take.size());
  }
  State.counters["items"] = Universe;
}
BENCHMARK(BM_ClassicSolveWide)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

/// Universe size x shard count. Shards=1 goes through the serial arena
/// path, so the sharding overhead (thread pool spin-up plus each
/// worker's own graph walk over its word window) reads off the table
/// directly; results are byte-identical at every point.
void BM_ShardedSolve(benchmark::State &State) {
  unsigned Universe = static_cast<unsigned>(State.range(0));
  unsigned Shards = static_cast<unsigned>(State.range(1));
  Built B = buildRandom(5, 400);
  GntProblem P = syntheticProblem(B, Universe, 99);
  for (auto _ : State) {
    GntResult R = solveGiveNTakeSharded(B.Ifg, P, Shards);
    benchmark::DoNotOptimize(R.Take.size());
  }
  State.counters["items"] = Universe;
  State.counters["shards"] = Shards;
}
BENCHMARK(BM_ShardedSolve)
    ->ArgsProduct({{1024, 4096, 16384}, {1, 2, 4, 8}});

//===----------------------------------------------------------------------===//
// Universe-compression families: duplicate-heavy and incompressible
//===----------------------------------------------------------------------===//
//
// The compressed solver's contract has two sides to measure: the win on
// universes full of repeated columns (the Section 2 array-section
// regime — one distinct access pattern stamped across many items), and
// the ceiling on universes where every column is distinct and the
// profitability gate must fall back to the plain solve after paying
// only the O(set bits) partition sweep.

/// The Section 2 array-section regime: of the whole universe only the
/// leading 1/8 is ever referenced, and those referenced items are 8
/// copies each of Universe/64 distinct access patterns (pattern i is
/// deterministically taken at node (i/64)%N and given at node i%N,
/// plus a little random noise, so patterns are nonempty and pairwise
/// distinct). Compression therefore sees exactly 8-fold duplication
/// among the live columns and elides the untouched 7/8 outright.
GntProblem syntheticDuplicateProblem(const Built &B, unsigned Universe,
                                     unsigned Seed) {
  unsigned Referenced = Universe / 8;
  unsigned Distinct = Referenced / 8;
  unsigned N = B.Ifg.size();
  std::mt19937 Rng(Seed);
  GntProblem Base(N, Distinct);
  for (unsigned Item = 0; Item != Distinct; ++Item) {
    Base.GiveInit[Item % N].set(Item);
    Base.TakeInit[(Item / 64) % N].set(Item);
  }
  for (unsigned Node = 0; Node != N; ++Node) {
    Base.TakeInit[Node].set(Rng() % Distinct);
    if (Rng() % 2)
      Base.StealInit[Node].set(Rng() % Distinct);
  }
  GntProblem P(N, Universe);
  for (unsigned Node = 0; Node != N; ++Node) {
    auto Stamp = [&](const BitVector &From, BitVector &To) {
      for (unsigned Item : From)
        for (unsigned Copy = Item; Copy < Referenced; Copy += Distinct)
          To.set(Copy);
    };
    Stamp(Base.TakeInit[Node], P.TakeInit[Node]);
    Stamp(Base.GiveInit[Node], P.GiveInit[Node]);
    Stamp(Base.StealInit[Node], P.StealInit[Node]);
  }
  return P;
}

/// A universe where every item's column is unique: item i is taken at
/// node i%N and given at node (i/N)%N, so no two items share a column
/// and no item is empty — zero classes merge, zero items elide.
GntProblem syntheticIncompressibleProblem(const Built &B, unsigned Universe) {
  unsigned N = B.Ifg.size();
  GntProblem P(N, Universe);
  for (unsigned Item = 0; Item != Universe; ++Item) {
    P.TakeInit[Item % N].set(Item);
    P.GiveInit[(Item / N) % N].set(Item);
  }
  return P;
}

void BM_ArenaSolveDuplicate(benchmark::State &State) {
  unsigned Universe = static_cast<unsigned>(State.range(0));
  Built B = buildRandom(5, 400);
  GntProblem P = syntheticDuplicateProblem(B, Universe, 99);
  for (auto _ : State) {
    GntResult R = solveGiveNTake(B.Ifg, P);
    benchmark::DoNotOptimize(R.Take.size());
  }
  State.counters["items"] = Universe;
}
BENCHMARK(BM_ArenaSolveDuplicate)->Arg(8192)->Arg(16384);

/// The headline: >= 1.5x over BM_ArenaSolveDuplicate at the same width
/// is the acceptance bar for the compression layer. The full solver
/// does equation work on every word of the universe whether or not any
/// item in it was ever referenced; the compressed solve runs the
/// equations over one bit per distinct pattern and reconstructs the
/// full-width matrix with a compiled whole-word expansion program —
/// copies for the duplicated blocks, memsets for the elided 7/8 — so
/// its cost approaches the arena's plain write floor. Partition +
/// expansion are the overhead being amortized.
void BM_CompressedSolveDuplicate(benchmark::State &State) {
  unsigned Universe = static_cast<unsigned>(State.range(0));
  Built B = buildRandom(5, 400);
  GntProblem P = syntheticDuplicateProblem(B, Universe, 99);
  double Ratio = 1.0;
  for (auto _ : State) {
    GntResult R = solveGiveNTakeCompressed(B.Ifg, P);
    benchmark::DoNotOptimize(R.Take.size());
    Ratio = R.Compression.Universe
                ? static_cast<double>(R.Compression.Classes) /
                      R.Compression.Universe
                : 1.0;
  }
  State.counters["items"] = Universe;
  State.counters["ratio"] = Ratio;
}
BENCHMARK(BM_CompressedSolveDuplicate)->Arg(8192)->Arg(16384);

void BM_ArenaSolveIncompressible(benchmark::State &State) {
  unsigned Universe = static_cast<unsigned>(State.range(0));
  Built B = buildRandom(5, 400);
  GntProblem P = syntheticIncompressibleProblem(B, Universe);
  for (auto _ : State) {
    GntResult R = solveGiveNTake(B.Ifg, P);
    benchmark::DoNotOptimize(R.Take.size());
  }
  State.counters["items"] = Universe;
}
BENCHMARK(BM_ArenaSolveIncompressible)->Arg(8192)->Arg(16384);

/// The overhead ceiling: every column is unique, the profitability gate
/// rejects compression, and this must stay within 5% of
/// BM_ArenaSolveIncompressible. The cost of finding out is a partial
/// partition sweep: the live class count is monotone under refinement,
/// so the sweep aborts the moment it proves the count will end above
/// the profitability threshold.
void BM_CompressedSolveIncompressible(benchmark::State &State) {
  unsigned Universe = static_cast<unsigned>(State.range(0));
  Built B = buildRandom(5, 400);
  GntProblem P = syntheticIncompressibleProblem(B, Universe);
  for (auto _ : State) {
    GntResult R = solveGiveNTakeCompressed(B.Ifg, P);
    benchmark::DoNotOptimize(R.Take.size());
  }
  State.counters["items"] = Universe;
}
BENCHMARK(BM_CompressedSolveIncompressible)->Arg(8192)->Arg(16384);

} // namespace

//===----------------------------------------------------------------------===//
// Roofline study: kernel variants vs the memory bandwidth ceiling
//===----------------------------------------------------------------------===//
//
// The solver's sweeps are pure word-streaming bit algebra, so past a
// few thousand items they are bandwidth problems, not ALU problems.
// This section measures, per registered kernel variant (scalar and
// whatever SIMD the machine has), the Wide and Duplicate families at
// 8192/16384 items, reporting:
//
//   bytes_touched   first-order traffic model of one solve (below)
//   cycles          TSC cycles per solve (x86; 0 where unavailable)
//   bytes_per_cycle bytes_touched / cycles — the roofline y-axis
//   bw_gbps         bytes_touched / wall time
//   ceiling_gbps    a memcpy probe of this machine's streaming
//                   bandwidth — the roof itself; bw_gbps/ceiling_gbps
//                   is how much of the hardware floor the variant uses
//
// The traffic model counts words, not cache lines: per node the S1-S4
// steps write the 20 arena rows once and read on the order of 30 row
// operands, and every FORWARD/JUMP/interval edge feeds about 6 gather
// reads. It deliberately overweights nothing — the same model is
// applied to every variant, so the *ratios* between kernels and the
// share of the ceiling are meaningful even though the absolute byte
// count is an estimate.

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
inline std::uint64_t tscNow() { return __rdtsc(); }
#else
inline std::uint64_t tscNow() { return 0; }
#endif

namespace {

double solveBytesTouched(const IntervalFlowGraph &Ifg, unsigned Universe) {
  const unsigned WordsPerRow =
      (Universe + BitVector::WordBits - 1) / BitVector::WordBits;
  const unsigned N = Ifg.size();
  std::size_t Edges = 0;
  for (unsigned Node = 0; Node != N; ++Node)
    Edges += Ifg.succs(Node).size();
  const double RowOps = 20.0 * N   // every arena row written once
                        + 30.0 * N // fused-step row reads
                        + 6.0 * Edges; // gather reads along edges
  return RowOps * WordsPerRow * sizeof(BitVector::Word);
}

/// Streaming-bandwidth roof: the best of a few large memcpy passes,
/// measured once and cached. 32 MiB per buffer comfortably exceeds any
/// L3 this code will meet while staying trivial to allocate.
double memcpyCeilingGbps() {
  static const double Ceiling = [] {
    const std::size_t Bytes = 32u << 20;
    std::vector<unsigned char> Src(Bytes, 0x5a), Dst(Bytes);
    double Best = 0.0;
    for (int Pass = 0; Pass != 5; ++Pass) {
      auto T0 = std::chrono::steady_clock::now();
      std::memcpy(Dst.data(), Src.data(), Bytes);
      benchmark::DoNotOptimize(Dst.data());
      auto T1 = std::chrono::steady_clock::now();
      double Sec = std::chrono::duration<double>(T1 - T0).count();
      // memcpy reads and writes every byte: 2x traffic.
      if (Sec > 0)
        Best = std::max(Best, 2.0 * Bytes / Sec / 1e9);
    }
    return Best;
  }();
  return Ceiling;
}

/// One roofline cell: family x items under a forced kernel variant.
void rooflineBody(benchmark::State &State, const SolverKernels &K,
                  bool Duplicate, unsigned Universe) {
  detail::ScopedKernelOverride Force(K);
  Built B = buildRandom(5, 400);
  GntProblem P = Duplicate ? syntheticDuplicateProblem(B, Universe, 99)
                           : syntheticProblem(B, Universe, 99);
  const double Bytes = solveBytesTouched(B.Ifg, Universe);
  std::uint64_t Cycles = 0;
  for (auto _ : State) {
    std::uint64_t C0 = tscNow();
    GntResult R = solveGiveNTake(B.Ifg, P);
    benchmark::DoNotOptimize(R.Take.size());
    Cycles += tscNow() - C0;
  }
  const double Iters = static_cast<double>(State.iterations());
  const double CyclesPerSolve = Iters ? Cycles / Iters : 0.0;
  State.counters["items"] = Universe;
  State.counters["bytes_touched"] = Bytes;
  State.counters["cycles"] = CyclesPerSolve;
  State.counters["bytes_per_cycle"] =
      CyclesPerSolve > 0 ? Bytes / CyclesPerSolve : 0.0;
  State.counters["bw_gbps"] = benchmark::Counter(
      Bytes * Iters / 1e9, benchmark::Counter::kIsRate);
  State.counters["ceiling_gbps"] = memcpyCeilingGbps();
}

/// One Wide-family register per kernel variant so the ~1.3x acceptance
/// ratio (best SIMD vs scalar at >= 8192 items) reads straight off the
/// BM_KernelRoofline rows of BENCH_solver.json.
void registerRooflineBenchmarks() {
  for (const SolverKernels *K : availableSolverKernels())
    for (bool Duplicate : {false, true})
      for (unsigned Universe : {8192u, 16384u}) {
        std::string Name = std::string("BM_KernelRoofline/") + K->Name +
                           (Duplicate ? "/duplicate/" : "/wide/") +
                           std::to_string(Universe);
        benchmark::RegisterBenchmark(
            Name.c_str(), [K, Duplicate, Universe](benchmark::State &S) {
              rooflineBody(S, *K, Duplicate, Universe);
            });
      }
}

//===----------------------------------------------------------------------===//
// Static windows vs work stealing on a skewed expansion
//===----------------------------------------------------------------------===//
//
// The duplicate family's compressed solve ends in a row-expansion pass
// whose per-row cost is skewed by construction: rows of nodes that
// never touch an item are a single memset, rows dense in segments pay
// the full word program. Static word-windows assign each worker a fixed
// row block regardless of that skew; the stealing scheduler oversplits
// and lets idle workers raid loaded deques. On a multi-core machine
// steal >= static here; on a single-core machine both degrade to the
// same serial loop (the delta reads off the two rows of the JSON).

void BM_CompressedExpandSchedule(benchmark::State &State) {
  const bool Steal = State.range(0) != 0;
  const unsigned Universe = 16384;
  Built B = buildRandom(5, 400);
  GntProblem P = syntheticDuplicateProblem(B, Universe, 99);
  GntShardPolicy Policy;
  Policy.WorkStealing = Steal;
  for (auto _ : State) {
    GntResult R = solveGiveNTakeCompressed(B.Ifg, P, /*Shards=*/4, &Policy);
    benchmark::DoNotOptimize(R.Take.size());
  }
  State.counters["items"] = Universe;
  State.counters["steal"] = Steal ? 1 : 0;
  State.counters["shards"] = 4;
}
BENCHMARK(BM_CompressedExpandSchedule)->Arg(0)->Arg(1);

} // namespace

int main(int argc, char **argv) {
  report();
  std::printf("kernel variants: ");
  for (const SolverKernels *K : availableSolverKernels())
    std::printf("%s%s ", K->Name,
                std::string_view(K->Name) == solverKernelName() ? "*" : "");
  std::printf("(* = active; GNT_KERNEL overrides)\n\n");
  registerRooflineBenchmarks();
  return runBenchmarksWithTrajectory(argc, argv, "BENCH_solver.json");
}
