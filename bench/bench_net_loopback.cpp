//===- bench/bench_net_loopback.cpp - Socket server loopback cost -----------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The serving overhead of the net subsystem, measured end to end over a
// loopback socket against an in-process NetServer: requests/sec through
// the full stack (framing -> admission -> pool -> pipeline -> ordered
// write-back) as worker and connection counts scale, and the hot-cache
// round-trip latency floor, where the pipeline cost vanishes and what
// remains is almost entirely the socket layer itself. Every run writes
// BENCH_net_loopback.json (BenchJson.h schema); the heavier open-loop
// latency-vs-offered-load sweep lives in tools/gnt-load.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"

#include "gen/RandomProgram.h"
#include "ir/AstPrinter.h"
#include "net/NetServer.h"
#include "support/Json.h"

#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace gnt;
using namespace gnt::net;

namespace {

int dialLoopback(std::uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Fd;
}

bool sendAll(int Fd, const std::string &Data) {
  const char *P = Data.data();
  std::size_t Len = Data.size();
  while (Len) {
    ssize_t W = ::write(Fd, P, Len);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += W;
    Len -= static_cast<std::size_t>(W);
  }
  return true;
}

/// Reads until \p Want newline-terminated lines arrived.
bool recvLines(int Fd, unsigned Want) {
  unsigned Got = 0;
  char Buf[64 * 1024];
  while (Got < Want) {
    ssize_t R = ::read(Fd, Buf, sizeof(Buf));
    if (R < 0 && errno == EINTR)
      continue;
    if (R <= 0)
      return false;
    for (ssize_t I = 0; I < R; ++I)
      if (Buf[I] == '\n')
        ++Got;
  }
  return true;
}

std::string requestLine(unsigned Id, const std::string &Source) {
  JsonWriter W;
  W.beginObject();
  W.key("id").value("j" + std::to_string(Id));
  W.key("source").value(Source);
  W.endObject();
  return W.str() + "\n";
}

/// Requests/sec through the full socket stack, distinct programs (cold
/// cache within an iteration), scaling workers x connections.
void BM_NetThroughput(benchmark::State &State) {
  unsigned Workers = static_cast<unsigned>(State.range(0));
  unsigned NumConns = static_cast<unsigned>(State.range(1));
  constexpr unsigned Jobs = 64;

  std::vector<std::string> Batches(NumConns);
  for (unsigned I = 0; I < Jobs; ++I) {
    GenConfig GC;
    GC.Seed = 1 + I;
    GC.TargetStmts = 24;
    Batches[I % NumConns] +=
        requestLine(I, AstPrinter().print(generateRandomProgram(GC)));
  }

  for (auto _ : State) {
    State.PauseTiming();
    ServiceConfig SC;
    SC.Workers = Workers;
    SC.CacheCapacity = 0; // Pure pipeline + serving cost.
    NetConfig NC;
    NC.Port = 0;
    NetServer Server(SC, NC);
    std::string Error;
    if (!Server.start(Error)) {
      State.SkipWithError(Error.c_str());
      return;
    }
    std::vector<int> Fds(NumConns);
    for (unsigned C = 0; C < NumConns; ++C)
      Fds[C] = dialLoopback(Server.port());
    State.ResumeTiming();

    std::vector<std::thread> Threads;
    for (unsigned C = 0; C < NumConns; ++C)
      Threads.emplace_back([&, C] {
        sendAll(Fds[C], Batches[C]);
        unsigned Want = 0;
        for (char Ch : Batches[C])
          Want += Ch == '\n';
        recvLines(Fds[C], Want);
      });
    for (std::thread &T : Threads)
      T.join();

    State.PauseTiming();
    for (int Fd : Fds)
      ::close(Fd);
    Server.requestDrain();
    Server.join();
    State.ResumeTiming();
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * Jobs);
  State.counters["workers"] = Workers;
  State.counters["connections"] = NumConns;
}

/// Hot-cache ping-pong on one connection: the serving floor. One
/// request at a time, every one a memory-cache hit, so the measurement
/// is framing + epoll + ordering + write-back, not compilation.
void BM_NetHotRoundTrip(benchmark::State &State) {
  ServiceConfig SC;
  SC.Workers = 2;
  NetConfig NC;
  NC.Port = 0;
  NetServer Server(SC, NC);
  std::string Error;
  if (!Server.start(Error)) {
    State.SkipWithError(Error.c_str());
    return;
  }
  GenConfig GC;
  GC.TargetStmts = 24;
  std::string Line =
      requestLine(0, AstPrinter().print(generateRandomProgram(GC)));
  int Fd = dialLoopback(Server.port());

  // Warm the cache before timing.
  sendAll(Fd, Line);
  recvLines(Fd, 1);

  for (auto _ : State) {
    sendAll(Fd, Line);
    recvLines(Fd, 1);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));

  ::close(Fd);
  Server.requestDrain();
  Server.join();
}

} // namespace

// Wall clock for the same reason as the batch throughput benchmarks:
// the work happens on server threads.
BENCHMARK(BM_NetThroughput)
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({4, 8})
    ->Args({8, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_NetHotRoundTrip)->Unit(benchmark::kMicrosecond)->UseRealTime();

int main(int argc, char **argv) {
  return gnt::bench::runBenchmarksWithTrajectory(argc, argv,
                                                 "BENCH_net_loopback.json");
}
