//===- bench/BenchUtil.h - Shared benchmark helpers -------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef GNT_BENCH_BENCHUTIL_H
#define GNT_BENCH_BENCHUTIL_H

#include "baseline/Baselines.h"
#include "baseline/LazyCodeMotion.h"
#include "cfg/CfgBuilder.h"
#include "comm/CommGen.h"
#include "frontend/Parser.h"
#include "gen/RandomProgram.h"
#include "interval/IntervalFlowGraph.h"
#include "sim/TraceSimulator.h"

#include <cstdio>
#include <stdexcept>
#include <string>

namespace gnt::bench {

/// A fully built analysis pipeline for one program.
struct Built {
  Program Prog;
  Cfg G;
  IntervalFlowGraph Ifg;
};

inline Built buildSource(const std::string &Source) {
  Built B;
  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.success())
    throw std::runtime_error("parse: " + Parsed.Errors.front());
  B.Prog = std::move(Parsed.Prog);
  CfgBuildResult CfgRes = buildCfg(B.Prog);
  if (!CfgRes.success())
    throw std::runtime_error("cfg: " + CfgRes.Errors.front());
  B.G = std::move(CfgRes.G);
  auto IfgRes = IntervalFlowGraph::build(B.G);
  if (!IfgRes.success())
    throw std::runtime_error("ifg: " + IfgRes.Errors.front());
  B.Ifg = std::move(*IfgRes.Ifg);
  return B;
}

inline Built buildRandom(unsigned Seed, unsigned Stmts, unsigned Depth = 4) {
  Built B;
  GenConfig C;
  C.Seed = Seed;
  C.TargetStmts = Stmts;
  C.MaxDepth = Depth;
  B.Prog = generateRandomProgram(C);
  CfgBuildResult CfgRes = buildCfg(B.Prog);
  if (!CfgRes.success())
    throw std::runtime_error("cfg: " + CfgRes.Errors.front());
  B.G = std::move(CfgRes.G);
  auto IfgRes = IntervalFlowGraph::build(B.G);
  if (!IfgRes.success())
    throw std::runtime_error("ifg: " + IfgRes.Errors.front());
  B.Ifg = std::move(*IfgRes.Ifg);
  return B;
}

/// Runs a plan and prints one comparison row.
inline SimStats runRow(const char *Name, const Built &B, const CommPlan &Plan,
                       SimConfig Config, bool Print = true) {
  SimStats S = simulate(B.Prog, Plan, Config);
  if (Print)
    std::printf("  %-12s | %8llu | %8llu | %10.0f | %9.0f | %9llu | %s\n",
                Name, S.Messages, S.Volume, S.ExposedLatency,
                S.totalTime(Config), S.Redundant,
                S.ok() ? "ok" : S.Errors.front().c_str());
  return S;
}

inline void rowHeader() {
  std::printf("  %-12s | %8s | %8s | %10s | %9s | %9s |\n", "strategy",
              "messages", "volume", "exposed", "time", "redundant");
  std::printf("  -------------+----------+----------+------------+-----------"
              "+-----------+\n");
}

} // namespace gnt::bench

#endif // GNT_BENCH_BENCHUTIL_H
