//===- bench/bench_zero_trip.cpp - Experiment E10 ---------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Experiment E10 (DESIGN.md): the zero-trip hoisting trade-off (paper
// Sections 1, 2, 4.1). Hoisting communication above a potentially
// zero-trip loop wins whenever the loop runs (1 vectorized message
// instead of per-iteration traffic, plus hiding) and costs one wasted
// message when it does not. The per-case opt-out (NoHoist headers /
// STEAL_init) trades that waste for per-iteration communication.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace gnt;
using namespace gnt::bench;

namespace {

const char *Kernel = R"(
distribute x
array u, w
do i = 1, warm
  w(i) = i
enddo
do k = 1, m
  u(k) = x(k + 2)
enddo
)";

void report() {
  std::printf("== E10: zero-trip hoisting trade-off ==\n\n");
  Built B = buildSource(Kernel);
  CommPlan Hoisting = generateComm(B.Prog, B.G, B.Ifg);
  CommOptions Off;
  Off.HoistZeroTrip = false;
  CommPlan NoHoist = generateComm(B.Prog, B.G, B.Ifg, Off);
  CommPlan Lcm = lcmPlacement(B.Prog, B.G, B.Ifg);

  std::printf("  %6s | %-12s | %8s | %8s | %8s | %8s\n", "m", "strategy",
              "messages", "volume", "wasted", "exposed");
  for (long long M : {0, 1, 16, 256}) {
    SimConfig Config;
    Config.Params["m"] = M;
    Config.Params["warm"] = 300;
    Config.Latency = 100.0;
    for (auto [Name, Plan] :
         {std::pair<const char *, const CommPlan *>{"hoist", &Hoisting},
          {"no-hoist", &NoHoist},
          {"lcm", &Lcm}}) {
      SimStats S = simulate(B.Prog, *Plan, Config);
      std::printf("  %6lld | %-12s | %8llu | %8llu | %8llu | %8.0f%s\n", M,
                  Name, S.Messages, S.Volume, S.Wasted, S.ExposedLatency,
                  S.ok() ? "" : "  ERROR");
    }
  }
  std::printf(
      "\nExpected shape: with m = 0, hoisting wastes exactly one message\n"
      "(the over-communication the paper accepts); with m > 0 it sends one\n"
      "hidden message where no-hoist and lcm pay per-iteration traffic.\n\n");
}

void BM_HoistAnalysis(benchmark::State &State) {
  Built B = buildSource(Kernel);
  for (auto _ : State) {
    CommPlan Plan = generateComm(B.Prog, B.G, B.Ifg);
    benchmark::DoNotOptimize(Plan.Anchored.size());
  }
}
BENCHMARK(BM_HoistAnalysis);

void BM_NoHoistAnalysis(benchmark::State &State) {
  Built B = buildSource(Kernel);
  CommOptions Off;
  Off.HoistZeroTrip = false;
  for (auto _ : State) {
    CommPlan Plan = generateComm(B.Prog, B.G, B.Ifg, Off);
    benchmark::DoNotOptimize(Plan.Anchored.size());
  }
}
BENCHMARK(BM_NoHoistAnalysis);

} // namespace

int main(int argc, char **argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
