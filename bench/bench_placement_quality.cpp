//===- bench/bench_placement_quality.cpp - Experiment E9 --------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Experiment E9 (DESIGN.md): placement-quality sweep over a suite of
// generated data-parallel programs. For each strategy we aggregate
// dynamic messages, volume, redundant transfers and exposed latency.
// Expected shape (paper Section 2): naive >> lcm > vectorized >
// give-n-take in message count; only give-n-take both eliminates
// redundancy (O1, free definitions) and hides latency (split
// send/receive).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace gnt;
using namespace gnt::bench;

namespace {

struct Aggregate {
  double Messages = 0, Volume = 0, Exposed = 0, Redundant = 0, Wasted = 0,
         Time = 0;
  unsigned Errors = 0;
};

void accumulate(Aggregate &A, const SimStats &S, const SimConfig &C) {
  A.Messages += static_cast<double>(S.Messages);
  A.Volume += static_cast<double>(S.Volume);
  A.Exposed += S.ExposedLatency;
  A.Redundant += static_cast<double>(S.Redundant);
  A.Wasted += static_cast<double>(S.Wasted);
  A.Time += S.totalTime(C);
  A.Errors += S.ok() ? 0 : 1;
}

Built buildSuite(unsigned Seed, bool Jumps) {
  GenConfig C;
  C.Seed = Seed;
  C.TargetStmts = 45;
  C.GotoProb = Jumps ? 0.1 : 0.0;
  Built B;
  B.Prog = generateRandomProgram(C);
  CfgBuildResult CfgRes = buildCfg(B.Prog);
  B.G = std::move(CfgRes.G);
  auto IfgRes = IntervalFlowGraph::build(B.G);
  B.Ifg = std::move(*IfgRes.Ifg);
  return B;
}

void reportSuite(const char *Title, bool Jumps) {
  constexpr unsigned Seeds = 24;
  Aggregate Agg[4];
  const char *Names[4] = {"naive", "lcm", "vectorized", "give-n-take"};

  for (unsigned Seed = 1; Seed <= Seeds; ++Seed) {
    Built B = buildSuite(Seed, Jumps);
    CommPlan Plans[4] = {
        naivePlacement(B.Prog, B.G, B.Ifg),
        lcmPlacement(B.Prog, B.G, B.Ifg),
        vectorizedPlacement(B.Prog, B.G, B.Ifg),
        generateComm(B.Prog, B.G, B.Ifg),
    };
    SimConfig Config;
    Config.Params["n"] = 32;
    Config.Latency = 100.0;
    Config.BranchSeed = Seed;
    for (unsigned I = 0; I != 4; ++I)
      accumulate(Agg[I], simulate(B.Prog, Plans[I], Config), Config);
  }

  std::printf("%s\n", Title);
  std::printf("  %-12s | %10s | %10s | %12s | %10s | %8s | %12s | %s\n",
              "strategy", "messages", "volume", "exposed", "redundant",
              "wasted", "total time", "errors");
  for (unsigned I = 0; I != 4; ++I)
    std::printf("  %-12s | %10.0f | %10.0f | %12.0f | %10.0f | %8.0f | "
                "%12.0f | %u\n",
                Names[I], Agg[I].Messages, Agg[I].Volume, Agg[I].Exposed,
                Agg[I].Redundant, Agg[I].Wasted, Agg[I].Time,
                Agg[I].Errors);
  std::printf("\n");
}

void report() {
  std::printf("== E9: placement quality over 24 random programs ==\n"
              "(totals, N = 32, latency = 100)\n\n");
  reportSuite("-- structured suite (no gotos out of loops) --", false);
  reportSuite("-- jump suite (gotos out of loops; GIVE-N-TAKE's AFTER\n"
              "   problems fall back to the paper's conservative Section\n"
              "   5.3 treatment) --",
              true);
}

void BM_QualityPipelineGnt(benchmark::State &State) {
  Built B = buildRandom(static_cast<unsigned>(State.range(0)), 45);
  for (auto _ : State) {
    CommPlan Plan = generateComm(B.Prog, B.G, B.Ifg);
    benchmark::DoNotOptimize(Plan.Anchored.size());
  }
}
BENCHMARK(BM_QualityPipelineGnt)->Arg(1)->Arg(2)->Arg(3);

void BM_QualityPipelineLcm(benchmark::State &State) {
  Built B = buildRandom(static_cast<unsigned>(State.range(0)), 45);
  for (auto _ : State) {
    CommPlan Plan = lcmPlacement(B.Prog, B.G, B.Ifg);
    benchmark::DoNotOptimize(Plan.Anchored.size());
  }
}
BENCHMARK(BM_QualityPipelineLcm)->Arg(1)->Arg(2)->Arg(3);

void BM_Simulate(benchmark::State &State) {
  Built B = buildRandom(1, 45);
  CommPlan Plan = generateComm(B.Prog, B.G, B.Ifg);
  SimConfig Config;
  Config.Params["n"] = 32;
  for (auto _ : State) {
    SimStats S = simulate(B.Prog, Plan, Config);
    benchmark::DoNotOptimize(S.Messages);
  }
}
BENCHMARK(BM_Simulate);

} // namespace

int main(int argc, char **argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
