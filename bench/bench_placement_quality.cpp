//===- bench/bench_placement_quality.cpp - Experiment E9 --------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Experiment E9 (DESIGN.md): the placement-strategy tournament. Every
// strategy — the three baselines (naive, lcm, vectorized) and the three
// first-class pipeline strategies (balanced, lospre, speculative) —
// plans every program of four families:
//
//   structured  generated suite, no gotos (the interval abstraction is
//               lossless here);
//   jumps       generated suite with gotos out of loops (Section 5.3
//               conservative treatment);
//   biased      the biased-branch family: a loop-invariant distributed
//               read guarded by a branch taken (n-1)/n of the time —
//               the family speculation exists for;
//   corpus      every checked-in tests/corpus/*.fm distillation.
//
// Each (family, strategy) cell aggregates dynamic messages, volume,
// exposed latency, redundancy, waste, the register-pressure proxy
// (peak simultaneously-available remote sections) and the
// profile-expected message cost; the timed benchmark measures plan
// construction (for speculative that includes its profile training
// run). The trajectory reporter mirrors every cell into
// BENCH_placement_tournament.json (gnt-bench-v1), which CI uploads.
//
// Expected shape: naive >> lcm > vectorized > balanced on messages;
// lospre == lcm on structured programs and <= lcm under jumps;
// speculative < balanced on expected dynamic cost for the biased
// family and never above it elsewhere.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

#include "comm/Strategy.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace gnt;
using namespace gnt::bench;

namespace {

enum Family : unsigned { Structured, Jumps, Biased, Corpus, NumFamilies };
enum Strat : unsigned {
  Naive,
  Lcm,
  Vectorized,
  Balanced,
  LospreStrat,
  SpeculativeStrat,
  NumStrats
};

const char *const FamilyNames[NumFamilies] = {"structured", "jumps",
                                              "biased", "corpus"};
const char *const StratNames[NumStrats] = {
    "naive", "lcm", "vectorized", "balanced", "lospre", "speculative"};

/// The evaluation binding: big trip counts and a heavily biased branch
/// distribution, so the biased family's likely arm really dominates.
SimConfig evalConfig(unsigned Seed) {
  SimConfig C;
  C.Params["n"] = 32;
  C.Latency = 100.0;
  C.BranchSeed = Seed;
  C.BranchTrueProb = 0.9;
  return C;
}

std::string biasedSource(unsigned Seed) {
  // A loop whose biased branch consumes loop-invariant distributed
  // sections on the likely arm; the guard constant and section indices
  // vary with the seed so the family is not one single program.
  std::string S = "distribute x, y\n";
  S += "do i = 1, n\n";
  S += "  if (i > " + std::to_string(1 + Seed % 3) + ") then\n";
  S += "    y(i) = x(" + std::to_string(3 + Seed % 5) + ") + x(" +
       std::to_string(9 + Seed % 4) + ")\n";
  S += "  else\n";
  S += "    y(i) = " + std::to_string(Seed) + "\n";
  S += "  endif\n";
  S += "enddo\n";
  return S;
}

const std::vector<Built> &familySuite(Family F) {
  static std::vector<Built> Suites[NumFamilies];
  static bool Done[NumFamilies] = {};
  if (Done[F])
    return Suites[F];
  std::vector<Built> &Out = Suites[F];
  switch (F) {
  case Structured:
  case Jumps:
    for (unsigned Seed = 1; Seed <= 16; ++Seed) {
      GenConfig C;
      C.Seed = Seed;
      C.TargetStmts = 45;
      C.GotoProb = F == Jumps ? 0.1 : 0.0;
      Built B;
      B.Prog = generateRandomProgram(C);
      CfgBuildResult CfgRes = buildCfg(B.Prog);
      B.G = std::move(CfgRes.G);
      auto IfgRes = IntervalFlowGraph::build(B.G);
      B.Ifg = std::move(*IfgRes.Ifg);
      Out.push_back(std::move(B));
    }
    break;
  case Biased:
    for (unsigned Seed = 1; Seed <= 8; ++Seed)
      Out.push_back(buildSource(biasedSource(Seed)));
    break;
  case Corpus: {
    std::vector<std::string> Paths;
    std::error_code Ec;
    for (const auto &Entry :
         std::filesystem::directory_iterator(GNT_BENCH_CORPUS_DIR, Ec))
      if (Entry.path().extension() == ".fm")
        Paths.push_back(Entry.path().string());
    std::sort(Paths.begin(), Paths.end());
    for (const std::string &Path : Paths) {
      std::ifstream In(Path);
      std::ostringstream SS;
      SS << In.rdbuf();
      Out.push_back(buildSource(SS.str()));
    }
    break;
  }
  case NumFamilies:
    break;
  }
  Done[F] = true;
  return Out;
}

CommPlan planFor(Strat S, const Built &B) {
  switch (S) {
  case Naive:
    return naivePlacement(B.Prog, B.G, B.Ifg);
  case Lcm:
    return lcmPlacement(B.Prog, B.G, B.Ifg);
  case Vectorized:
    return vectorizedPlacement(B.Prog, B.G, B.Ifg);
  case Balanced:
    return generateComm(B.Prog, B.G, B.Ifg);
  case LospreStrat:
    return losprePlacement(B.Prog, B.G, B.Ifg, CommOptions());
  case SpeculativeStrat: {
    // Speculation's cost includes its training run: a balanced plan
    // simulated under the biased evaluation distribution.
    CommPlan BalancedPlan = generateComm(B.Prog, B.G, B.Ifg);
    SimStats Train = simulate(B.Prog, BalancedPlan, evalConfig(1));
    return generateSpeculativeComm(B.Prog, B.G, B.Ifg, CommOptions(),
                                   Train.Profile);
  }
  case NumStrats:
    break;
  }
  return {};
}

struct Cell {
  double Messages = 0, Volume = 0, Exposed = 0, Redundant = 0, Wasted = 0,
         PeakAvail = 0, ExpectedCost = 0, Time = 0;
  unsigned Errors = 0, Programs = 0;
};

/// One tournament cell, computed once and memoized: the quality sweep
/// is deterministic, and both the console table and the benchmark
/// counters read the same numbers.
const Cell &cell(Family F, Strat S) {
  static Cell Table[NumFamilies][NumStrats];
  static bool Done[NumFamilies][NumStrats] = {};
  Cell &C = Table[F][S];
  if (Done[F][S])
    return C;
  unsigned Seed = 0;
  for (const Built &B : familySuite(F)) {
    ++Seed;
    CommPlan Plan = planFor(S, B);
    SimConfig Config = evalConfig(Seed);
    SimStats Stats = simulate(B.Prog, Plan, Config);
    C.Messages += static_cast<double>(Stats.Messages);
    C.Volume += static_cast<double>(Stats.Volume);
    C.Exposed += Stats.ExposedLatency;
    C.Redundant += static_cast<double>(Stats.Redundant);
    C.Wasted += static_cast<double>(Stats.Wasted);
    C.PeakAvail += static_cast<double>(Stats.PeakAvail);
    C.ExpectedCost += expectedMessageCost(B.Prog, Plan, Stats.Profile);
    C.Time += Stats.totalTime(Config);
    C.Errors += Stats.ok() ? 0 : 1;
    ++C.Programs;
  }
  Done[F][S] = true;
  return C;
}

void report() {
  std::printf("== E9: placement-strategy tournament ==\n"
              "(totals per family, N = 32, latency = 100, branch bias "
              "0.9)\n\n");
  for (unsigned F = 0; F != NumFamilies; ++F) {
    std::printf("-- %s (%zu programs) --\n", FamilyNames[F],
                familySuite(static_cast<Family>(F)).size());
    std::printf("  %-12s | %9s | %9s | %11s | %9s | %7s | %10s | %13s | %s\n",
                "strategy", "messages", "volume", "exposed", "redundant",
                "wasted", "peakavail", "expected-cost", "errors");
    for (unsigned S = 0; S != NumStrats; ++S) {
      const Cell &C = cell(static_cast<Family>(F), static_cast<Strat>(S));
      std::printf("  %-12s | %9.0f | %9.0f | %11.0f | %9.0f | %7.0f | "
                  "%10.0f | %13.1f | %u\n",
                  StratNames[S], C.Messages, C.Volume, C.Exposed,
                  C.Redundant, C.Wasted, C.PeakAvail, C.ExpectedCost,
                  C.Errors);
    }
    std::printf("\n");
  }
}

/// The timed half of a tournament cell: plan construction over the
/// whole family (for speculative that includes the training run). The
/// quality metrics ride along as counters so the JSON trajectory
/// carries the full cell.
void BM_Tournament(benchmark::State &State, Family F, Strat S) {
  const std::vector<Built> &Suite = familySuite(F);
  for (auto _ : State) {
    for (const Built &B : Suite) {
      CommPlan Plan = planFor(S, B);
      benchmark::DoNotOptimize(Plan.Anchored.size());
    }
  }
  const Cell &C = cell(F, S);
  State.counters["programs"] = C.Programs;
  State.counters["messages"] = C.Messages;
  State.counters["volume"] = C.Volume;
  State.counters["exposed"] = C.Exposed;
  State.counters["redundant"] = C.Redundant;
  State.counters["wasted"] = C.Wasted;
  State.counters["peak_avail"] = C.PeakAvail;
  State.counters["expected_cost"] = C.ExpectedCost;
  State.counters["sim_errors"] = C.Errors;
}

void registerTournament() {
  for (unsigned F = 0; F != NumFamilies; ++F)
    for (unsigned S = 0; S != NumStrats; ++S)
      benchmark::RegisterBenchmark(
          (std::string("BM_Tournament/") + FamilyNames[F] + "/" +
           StratNames[S])
              .c_str(),
          BM_Tournament, static_cast<Family>(F), static_cast<Strat>(S))
          ->Unit(benchmark::kMillisecond);
}

void BM_Simulate(benchmark::State &State) {
  Built B = buildRandom(1, 45);
  CommPlan Plan = generateComm(B.Prog, B.G, B.Ifg);
  SimConfig Config;
  Config.Params["n"] = 32;
  for (auto _ : State) {
    SimStats S = simulate(B.Prog, Plan, Config);
    benchmark::DoNotOptimize(S.Messages);
  }
}
BENCHMARK(BM_Simulate);

} // namespace

int main(int argc, char **argv) {
  report();
  registerTournament();
  return runBenchmarksWithTrajectory(argc, argv,
                                     "BENCH_placement_tournament.json");
}
