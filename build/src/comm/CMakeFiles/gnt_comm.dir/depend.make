# Empty dependencies file for gnt_comm.
# This may be replaced when dependencies are built.
