file(REMOVE_RECURSE
  "CMakeFiles/gnt_comm.dir/CommGen.cpp.o"
  "CMakeFiles/gnt_comm.dir/CommGen.cpp.o.d"
  "CMakeFiles/gnt_comm.dir/Items.cpp.o"
  "CMakeFiles/gnt_comm.dir/Items.cpp.o.d"
  "CMakeFiles/gnt_comm.dir/RefAnalysis.cpp.o"
  "CMakeFiles/gnt_comm.dir/RefAnalysis.cpp.o.d"
  "libgnt_comm.a"
  "libgnt_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnt_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
