file(REMOVE_RECURSE
  "libgnt_comm.a"
)
