# Empty compiler generated dependencies file for gnt_sim.
# This may be replaced when dependencies are built.
