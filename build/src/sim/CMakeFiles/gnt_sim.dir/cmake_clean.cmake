file(REMOVE_RECURSE
  "CMakeFiles/gnt_sim.dir/TraceSimulator.cpp.o"
  "CMakeFiles/gnt_sim.dir/TraceSimulator.cpp.o.d"
  "libgnt_sim.a"
  "libgnt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
