file(REMOVE_RECURSE
  "libgnt_sim.a"
)
