# Empty compiler generated dependencies file for gnt_ir.
# This may be replaced when dependencies are built.
