file(REMOVE_RECURSE
  "libgnt_ir.a"
)
