file(REMOVE_RECURSE
  "CMakeFiles/gnt_ir.dir/Affine.cpp.o"
  "CMakeFiles/gnt_ir.dir/Affine.cpp.o.d"
  "CMakeFiles/gnt_ir.dir/Ast.cpp.o"
  "CMakeFiles/gnt_ir.dir/Ast.cpp.o.d"
  "CMakeFiles/gnt_ir.dir/AstPrinter.cpp.o"
  "CMakeFiles/gnt_ir.dir/AstPrinter.cpp.o.d"
  "libgnt_ir.a"
  "libgnt_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnt_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
