file(REMOVE_RECURSE
  "libgnt_baseline.a"
)
