file(REMOVE_RECURSE
  "CMakeFiles/gnt_baseline.dir/Baselines.cpp.o"
  "CMakeFiles/gnt_baseline.dir/Baselines.cpp.o.d"
  "CMakeFiles/gnt_baseline.dir/LazyCodeMotion.cpp.o"
  "CMakeFiles/gnt_baseline.dir/LazyCodeMotion.cpp.o.d"
  "libgnt_baseline.a"
  "libgnt_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnt_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
