# Empty compiler generated dependencies file for gnt_baseline.
# This may be replaced when dependencies are built.
