file(REMOVE_RECURSE
  "libgnt_dataflow.a"
)
