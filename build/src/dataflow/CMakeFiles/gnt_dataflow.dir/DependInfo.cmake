
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/Dump.cpp" "src/dataflow/CMakeFiles/gnt_dataflow.dir/Dump.cpp.o" "gcc" "src/dataflow/CMakeFiles/gnt_dataflow.dir/Dump.cpp.o.d"
  "/root/repo/src/dataflow/GiveNTake.cpp" "src/dataflow/CMakeFiles/gnt_dataflow.dir/GiveNTake.cpp.o" "gcc" "src/dataflow/CMakeFiles/gnt_dataflow.dir/GiveNTake.cpp.o.d"
  "/root/repo/src/dataflow/Verifier.cpp" "src/dataflow/CMakeFiles/gnt_dataflow.dir/Verifier.cpp.o" "gcc" "src/dataflow/CMakeFiles/gnt_dataflow.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interval/CMakeFiles/gnt_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/gnt_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gnt_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
