file(REMOVE_RECURSE
  "CMakeFiles/gnt_dataflow.dir/Dump.cpp.o"
  "CMakeFiles/gnt_dataflow.dir/Dump.cpp.o.d"
  "CMakeFiles/gnt_dataflow.dir/GiveNTake.cpp.o"
  "CMakeFiles/gnt_dataflow.dir/GiveNTake.cpp.o.d"
  "CMakeFiles/gnt_dataflow.dir/Verifier.cpp.o"
  "CMakeFiles/gnt_dataflow.dir/Verifier.cpp.o.d"
  "libgnt_dataflow.a"
  "libgnt_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnt_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
