# Empty dependencies file for gnt_dataflow.
# This may be replaced when dependencies are built.
