file(REMOVE_RECURSE
  "libgnt_interval.a"
)
