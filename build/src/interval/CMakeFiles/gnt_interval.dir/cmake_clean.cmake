file(REMOVE_RECURSE
  "CMakeFiles/gnt_interval.dir/IntervalFlowGraph.cpp.o"
  "CMakeFiles/gnt_interval.dir/IntervalFlowGraph.cpp.o.d"
  "CMakeFiles/gnt_interval.dir/LoopForest.cpp.o"
  "CMakeFiles/gnt_interval.dir/LoopForest.cpp.o.d"
  "libgnt_interval.a"
  "libgnt_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnt_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
