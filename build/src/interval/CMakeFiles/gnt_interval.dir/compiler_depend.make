# Empty compiler generated dependencies file for gnt_interval.
# This may be replaced when dependencies are built.
