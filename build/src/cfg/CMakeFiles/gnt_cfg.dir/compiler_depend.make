# Empty compiler generated dependencies file for gnt_cfg.
# This may be replaced when dependencies are built.
