file(REMOVE_RECURSE
  "libgnt_cfg.a"
)
