
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/Cfg.cpp" "src/cfg/CMakeFiles/gnt_cfg.dir/Cfg.cpp.o" "gcc" "src/cfg/CMakeFiles/gnt_cfg.dir/Cfg.cpp.o.d"
  "/root/repo/src/cfg/CfgBuilder.cpp" "src/cfg/CMakeFiles/gnt_cfg.dir/CfgBuilder.cpp.o" "gcc" "src/cfg/CMakeFiles/gnt_cfg.dir/CfgBuilder.cpp.o.d"
  "/root/repo/src/cfg/Dominators.cpp" "src/cfg/CMakeFiles/gnt_cfg.dir/Dominators.cpp.o" "gcc" "src/cfg/CMakeFiles/gnt_cfg.dir/Dominators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/gnt_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
