file(REMOVE_RECURSE
  "CMakeFiles/gnt_cfg.dir/Cfg.cpp.o"
  "CMakeFiles/gnt_cfg.dir/Cfg.cpp.o.d"
  "CMakeFiles/gnt_cfg.dir/CfgBuilder.cpp.o"
  "CMakeFiles/gnt_cfg.dir/CfgBuilder.cpp.o.d"
  "CMakeFiles/gnt_cfg.dir/Dominators.cpp.o"
  "CMakeFiles/gnt_cfg.dir/Dominators.cpp.o.d"
  "libgnt_cfg.a"
  "libgnt_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnt_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
