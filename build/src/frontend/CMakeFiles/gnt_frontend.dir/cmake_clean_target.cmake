file(REMOVE_RECURSE
  "libgnt_frontend.a"
)
