file(REMOVE_RECURSE
  "CMakeFiles/gnt_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/gnt_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/gnt_frontend.dir/Parser.cpp.o"
  "CMakeFiles/gnt_frontend.dir/Parser.cpp.o.d"
  "libgnt_frontend.a"
  "libgnt_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnt_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
