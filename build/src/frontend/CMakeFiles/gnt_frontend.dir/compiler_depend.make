# Empty compiler generated dependencies file for gnt_frontend.
# This may be replaced when dependencies are built.
