# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ir")
subdirs("frontend")
subdirs("cfg")
subdirs("interval")
subdirs("dataflow")
subdirs("comm")
subdirs("pre")
subdirs("baseline")
subdirs("sim")
subdirs("gen")
