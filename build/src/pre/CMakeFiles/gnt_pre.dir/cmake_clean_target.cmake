file(REMOVE_RECURSE
  "libgnt_pre.a"
)
