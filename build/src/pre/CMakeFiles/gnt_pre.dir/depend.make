# Empty dependencies file for gnt_pre.
# This may be replaced when dependencies are built.
