file(REMOVE_RECURSE
  "CMakeFiles/gnt_pre.dir/ExprPre.cpp.o"
  "CMakeFiles/gnt_pre.dir/ExprPre.cpp.o.d"
  "libgnt_pre.a"
  "libgnt_pre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnt_pre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
