
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pre/ExprPre.cpp" "src/pre/CMakeFiles/gnt_pre.dir/ExprPre.cpp.o" "gcc" "src/pre/CMakeFiles/gnt_pre.dir/ExprPre.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/gnt_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/gnt_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/gnt_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gnt_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
