# Empty compiler generated dependencies file for gnt_gen.
# This may be replaced when dependencies are built.
