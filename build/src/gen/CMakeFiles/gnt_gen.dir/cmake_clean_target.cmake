file(REMOVE_RECURSE
  "libgnt_gen.a"
)
