file(REMOVE_RECURSE
  "CMakeFiles/gnt_gen.dir/RandomProgram.cpp.o"
  "CMakeFiles/gnt_gen.dir/RandomProgram.cpp.o.d"
  "libgnt_gen.a"
  "libgnt_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnt_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
