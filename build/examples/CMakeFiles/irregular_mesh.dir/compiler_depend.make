# Empty compiler generated dependencies file for irregular_mesh.
# This may be replaced when dependencies are built.
