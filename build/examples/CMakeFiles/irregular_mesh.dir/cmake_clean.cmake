file(REMOVE_RECURSE
  "CMakeFiles/irregular_mesh.dir/irregular_mesh.cpp.o"
  "CMakeFiles/irregular_mesh.dir/irregular_mesh.cpp.o.d"
  "irregular_mesh"
  "irregular_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
