file(REMOVE_RECURSE
  "CMakeFiles/pre_cse.dir/pre_cse.cpp.o"
  "CMakeFiles/pre_cse.dir/pre_cse.cpp.o.d"
  "pre_cse"
  "pre_cse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pre_cse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
