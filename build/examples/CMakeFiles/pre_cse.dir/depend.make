# Empty dependencies file for pre_cse.
# This may be replaced when dependencies are built.
