file(REMOVE_RECURSE
  "CMakeFiles/latency_hiding.dir/latency_hiding.cpp.o"
  "CMakeFiles/latency_hiding.dir/latency_hiding.cpp.o.d"
  "latency_hiding"
  "latency_hiding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_hiding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
