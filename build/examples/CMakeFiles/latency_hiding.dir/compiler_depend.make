# Empty compiler generated dependencies file for latency_hiding.
# This may be replaced when dependencies are built.
