file(REMOVE_RECURSE
  "CMakeFiles/read_write.dir/read_write.cpp.o"
  "CMakeFiles/read_write.dir/read_write.cpp.o.d"
  "read_write"
  "read_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
