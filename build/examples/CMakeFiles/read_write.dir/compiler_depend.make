# Empty compiler generated dependencies file for read_write.
# This may be replaced when dependencies are built.
