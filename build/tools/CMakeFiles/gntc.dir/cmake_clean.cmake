file(REMOVE_RECURSE
  "CMakeFiles/gntc.dir/gntc.cpp.o"
  "CMakeFiles/gntc.dir/gntc.cpp.o.d"
  "gntc"
  "gntc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gntc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
