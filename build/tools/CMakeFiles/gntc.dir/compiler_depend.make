# Empty compiler generated dependencies file for gntc.
# This may be replaced when dependencies are built.
