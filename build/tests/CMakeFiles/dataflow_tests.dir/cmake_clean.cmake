file(REMOVE_RECURSE
  "CMakeFiles/dataflow_tests.dir/DumpTest.cpp.o"
  "CMakeFiles/dataflow_tests.dir/DumpTest.cpp.o.d"
  "CMakeFiles/dataflow_tests.dir/GntPaperValuesTest.cpp.o"
  "CMakeFiles/dataflow_tests.dir/GntPaperValuesTest.cpp.o.d"
  "CMakeFiles/dataflow_tests.dir/GntSolverTest.cpp.o"
  "CMakeFiles/dataflow_tests.dir/GntSolverTest.cpp.o.d"
  "dataflow_tests"
  "dataflow_tests.pdb"
  "dataflow_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataflow_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
