# Empty dependencies file for dataflow_tests.
# This may be replaced when dependencies are built.
