file(REMOVE_RECURSE
  "CMakeFiles/comm_tests.dir/CommPaperFiguresTest.cpp.o"
  "CMakeFiles/comm_tests.dir/CommPaperFiguresTest.cpp.o.d"
  "CMakeFiles/comm_tests.dir/ReductionTest.cpp.o"
  "CMakeFiles/comm_tests.dir/ReductionTest.cpp.o.d"
  "CMakeFiles/comm_tests.dir/RefAnalysisTest.cpp.o"
  "CMakeFiles/comm_tests.dir/RefAnalysisTest.cpp.o.d"
  "comm_tests"
  "comm_tests.pdb"
  "comm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
