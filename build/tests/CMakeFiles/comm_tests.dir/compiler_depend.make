# Empty compiler generated dependencies file for comm_tests.
# This may be replaced when dependencies are built.
