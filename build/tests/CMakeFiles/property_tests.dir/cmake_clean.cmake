file(REMOVE_RECURSE
  "CMakeFiles/property_tests.dir/PropertyTest.cpp.o"
  "CMakeFiles/property_tests.dir/PropertyTest.cpp.o.d"
  "property_tests"
  "property_tests.pdb"
  "property_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
