# Empty dependencies file for printer_tests.
# This may be replaced when dependencies are built.
