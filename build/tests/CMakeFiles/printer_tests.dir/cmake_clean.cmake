file(REMOVE_RECURSE
  "CMakeFiles/printer_tests.dir/AnnotationTest.cpp.o"
  "CMakeFiles/printer_tests.dir/AnnotationTest.cpp.o.d"
  "CMakeFiles/printer_tests.dir/GeneratorTest.cpp.o"
  "CMakeFiles/printer_tests.dir/GeneratorTest.cpp.o.d"
  "printer_tests"
  "printer_tests.pdb"
  "printer_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printer_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
