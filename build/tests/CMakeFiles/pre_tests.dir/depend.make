# Empty dependencies file for pre_tests.
# This may be replaced when dependencies are built.
