file(REMOVE_RECURSE
  "CMakeFiles/pre_tests.dir/ExprPreTest.cpp.o"
  "CMakeFiles/pre_tests.dir/ExprPreTest.cpp.o.d"
  "pre_tests"
  "pre_tests.pdb"
  "pre_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pre_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
