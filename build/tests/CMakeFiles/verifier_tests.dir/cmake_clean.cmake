file(REMOVE_RECURSE
  "CMakeFiles/verifier_tests.dir/VerifierTest.cpp.o"
  "CMakeFiles/verifier_tests.dir/VerifierTest.cpp.o.d"
  "verifier_tests"
  "verifier_tests.pdb"
  "verifier_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verifier_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
