# Empty dependencies file for verifier_tests.
# This may be replaced when dependencies are built.
