
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/CfgTest.cpp" "tests/CMakeFiles/cfg_tests.dir/CfgTest.cpp.o" "gcc" "tests/CMakeFiles/cfg_tests.dir/CfgTest.cpp.o.d"
  "/root/repo/tests/IntervalTest.cpp" "tests/CMakeFiles/cfg_tests.dir/IntervalTest.cpp.o" "gcc" "tests/CMakeFiles/cfg_tests.dir/IntervalTest.cpp.o.d"
  "/root/repo/tests/NormalizationTest.cpp" "tests/CMakeFiles/cfg_tests.dir/NormalizationTest.cpp.o" "gcc" "tests/CMakeFiles/cfg_tests.dir/NormalizationTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pre/CMakeFiles/gnt_pre.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/gnt_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gnt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/gnt_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/gnt_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/gnt_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/gnt_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/gnt_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/gnt_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gnt_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
