# Empty dependencies file for cfg_tests.
# This may be replaced when dependencies are built.
