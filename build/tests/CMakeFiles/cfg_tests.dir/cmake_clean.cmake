file(REMOVE_RECURSE
  "CMakeFiles/cfg_tests.dir/CfgTest.cpp.o"
  "CMakeFiles/cfg_tests.dir/CfgTest.cpp.o.d"
  "CMakeFiles/cfg_tests.dir/IntervalTest.cpp.o"
  "CMakeFiles/cfg_tests.dir/IntervalTest.cpp.o.d"
  "CMakeFiles/cfg_tests.dir/NormalizationTest.cpp.o"
  "CMakeFiles/cfg_tests.dir/NormalizationTest.cpp.o.d"
  "cfg_tests"
  "cfg_tests.pdb"
  "cfg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
