file(REMOVE_RECURSE
  "CMakeFiles/support_tests.dir/BitVectorTest.cpp.o"
  "CMakeFiles/support_tests.dir/BitVectorTest.cpp.o.d"
  "support_tests"
  "support_tests.pdb"
  "support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
