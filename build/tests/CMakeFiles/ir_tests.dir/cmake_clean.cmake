file(REMOVE_RECURSE
  "CMakeFiles/ir_tests.dir/AffineTest.cpp.o"
  "CMakeFiles/ir_tests.dir/AffineTest.cpp.o.d"
  "CMakeFiles/ir_tests.dir/ParserTest.cpp.o"
  "CMakeFiles/ir_tests.dir/ParserTest.cpp.o.d"
  "ir_tests"
  "ir_tests.pdb"
  "ir_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
