# Empty dependencies file for ir_tests.
# This may be replaced when dependencies are built.
