# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/ir_tests[1]_include.cmake")
include("/root/repo/build/tests/cfg_tests[1]_include.cmake")
include("/root/repo/build/tests/dataflow_tests[1]_include.cmake")
include("/root/repo/build/tests/comm_tests[1]_include.cmake")
include("/root/repo/build/tests/pre_tests[1]_include.cmake")
include("/root/repo/build/tests/verifier_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/printer_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
