file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_communication.dir/bench_fig2_communication.cpp.o"
  "CMakeFiles/bench_fig2_communication.dir/bench_fig2_communication.cpp.o.d"
  "bench_fig2_communication"
  "bench_fig2_communication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_communication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
