# Empty compiler generated dependencies file for bench_fig3_write_read.
# This may be replaced when dependencies are built.
