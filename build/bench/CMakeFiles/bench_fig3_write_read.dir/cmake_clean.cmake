file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_write_read.dir/bench_fig3_write_read.cpp.o"
  "CMakeFiles/bench_fig3_write_read.dir/bench_fig3_write_read.cpp.o.d"
  "bench_fig3_write_read"
  "bench_fig3_write_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_write_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
