file(REMOVE_RECURSE
  "CMakeFiles/bench_placement_quality.dir/bench_placement_quality.cpp.o"
  "CMakeFiles/bench_placement_quality.dir/bench_placement_quality.cpp.o.d"
  "bench_placement_quality"
  "bench_placement_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_placement_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
