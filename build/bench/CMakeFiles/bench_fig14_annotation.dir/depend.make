# Empty dependencies file for bench_fig14_annotation.
# This may be replaced when dependencies are built.
