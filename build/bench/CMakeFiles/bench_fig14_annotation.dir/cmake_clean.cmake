file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_annotation.dir/bench_fig14_annotation.cpp.o"
  "CMakeFiles/bench_fig14_annotation.dir/bench_fig14_annotation.cpp.o.d"
  "bench_fig14_annotation"
  "bench_fig14_annotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_annotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
