file(REMOVE_RECURSE
  "CMakeFiles/bench_solver_scaling.dir/bench_solver_scaling.cpp.o"
  "CMakeFiles/bench_solver_scaling.dir/bench_solver_scaling.cpp.o.d"
  "bench_solver_scaling"
  "bench_solver_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_solver_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
