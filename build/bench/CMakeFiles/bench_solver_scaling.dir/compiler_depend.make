# Empty compiler generated dependencies file for bench_solver_scaling.
# This may be replaced when dependencies are built.
