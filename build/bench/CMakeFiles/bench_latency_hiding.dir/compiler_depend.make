# Empty compiler generated dependencies file for bench_latency_hiding.
# This may be replaced when dependencies are built.
