file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_hiding.dir/bench_latency_hiding.cpp.o"
  "CMakeFiles/bench_latency_hiding.dir/bench_latency_hiding.cpp.o.d"
  "bench_latency_hiding"
  "bench_latency_hiding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_hiding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
