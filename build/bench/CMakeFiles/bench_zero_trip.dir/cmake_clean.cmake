file(REMOVE_RECURSE
  "CMakeFiles/bench_zero_trip.dir/bench_zero_trip.cpp.o"
  "CMakeFiles/bench_zero_trip.dir/bench_zero_trip.cpp.o.d"
  "bench_zero_trip"
  "bench_zero_trip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zero_trip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
