# Empty dependencies file for bench_zero_trip.
# This may be replaced when dependencies are built.
